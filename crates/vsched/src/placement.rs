//! VM placement policies.
//!
//! The seed platform pins the VM→host map at cluster construction via
//! [`Placement::host_of`]. This module turns that decision into a policy:
//! a [`PlacementPolicy`] may rewrite the map before the cluster is built
//! (pack onto few hosts, spread across all, or pick adaptively from a
//! workload hint), or decline ([`SpecPlacement`]) and leave the spec's own
//! layout untouched — the byte-identical default.
//!
//! The adaptive policy reuses the paper's normal-vs-cross-domain framing:
//! packing keeps shuffle traffic on the fast in-host software bridge but
//! stacks every VCPU (and dom0's per-byte I/O tax) onto one host's cores;
//! spreading pays the slower physical NIC but doubles the core budget.
//! [`estimate_makespan`] prices both effects and the policy picks the
//! cheaper layout.

use vcluster::spec::{ClusterSpec, Placement};

/// Rough description of the workload a placement must serve, used by
/// [`AdaptivePlacement`] to price candidate layouts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadHint {
    /// Concurrent tasks in one wave (map slots demanded).
    pub tasks: u32,
    /// Guest CPU seconds each task burns.
    pub cpu_secs_per_task: f64,
    /// Bytes each task ships through spill + shuffle.
    pub shuffle_bytes_per_task: u64,
}

impl Default for WorkloadHint {
    fn default() -> Self {
        // One modest map wave: what the paper's normal-vs-cross runs look
        // like per job. Callers with real knowledge should override.
        WorkloadHint { tasks: 8, cpu_secs_per_task: 2.0, shuffle_bytes_per_task: 16 << 20 }
    }
}

/// Maps a cluster spec to an explicit VM→host assignment, or declines and
/// keeps the spec's own placement.
pub trait PlacementPolicy {
    /// Stable display name (CSV column, trace args).
    fn name(&self) -> &'static str;

    /// Returns `Some(map)` with one host index per VM to override the
    /// spec's placement, or `None` to keep the spec untouched.
    fn assign(&self, spec: &ClusterSpec) -> Option<Vec<u32>>;
}

/// Keeps the spec's own placement — the policy under which the platform is
/// byte-identical to a controller-free run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpecPlacement;

impl PlacementPolicy for SpecPlacement {
    fn name(&self) -> &'static str {
        "spec"
    }
    fn assign(&self, _spec: &ClusterSpec) -> Option<Vec<u32>> {
        None
    }
}

/// Consolidates: fills hosts in index order, moving on only when a host's
/// DRAM is exhausted (the paper's "normal" single-domain layout when the
/// VMs fit one host).
#[derive(Debug, Clone, Copy, Default)]
pub struct PackPlacement;

impl PlacementPolicy for PackPlacement {
    fn name(&self) -> &'static str {
        "pack"
    }
    fn assign(&self, spec: &ClusterSpec) -> Option<Vec<u32>> {
        let per_host = (spec.host.dram / spec.vm.mem.max(1)).max(1) as u32;
        Some((0..spec.vms).map(|v| (v / per_host).min(spec.hosts - 1)).collect())
    }
}

/// Balances: VM *i* lands on host *i* mod hosts (the paper's cross-domain
/// layout generalized to any host count).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpreadPlacement;

impl PlacementPolicy for SpreadPlacement {
    fn name(&self) -> &'static str {
        "spread"
    }
    fn assign(&self, spec: &ClusterSpec) -> Option<Vec<u32>> {
        Some((0..spec.vms).map(|v| v % spec.hosts).collect())
    }
}

/// Picks pack or spread, whichever [`estimate_makespan`] prices cheaper
/// for the hinted workload on the given spec. `host_load` (one entry per
/// host, 0.0 = idle, 1.0 = saturated) discounts cores already busy with
/// background work; pass an empty slice when the cluster is idle.
#[derive(Debug, Clone)]
pub struct AdaptivePlacement {
    /// The workload being priced.
    pub hint: WorkloadHint,
    /// Per-host background CPU load in `[0, 1]`; empty = all idle.
    pub host_load: Vec<f64>,
}

impl PlacementPolicy for AdaptivePlacement {
    fn name(&self) -> &'static str {
        "adaptive"
    }
    fn assign(&self, spec: &ClusterSpec) -> Option<Vec<u32>> {
        assign_adaptive(spec, &self.hint, &self.host_load, &crate::model::HandPriced)
    }
}

/// Model-aware adaptive assignment: prices the pack and spread layouts
/// with `model` and returns the cheaper one. [`AdaptivePlacement`] is
/// this with the [`HandPriced`](crate::model::HandPriced) baseline; the
/// controller substitutes its configured
/// [`MakespanKind`](crate::model::MakespanKind) so a learned tree steers
/// boot-time placement too.
pub fn assign_adaptive(
    spec: &ClusterSpec,
    hint: &WorkloadHint,
    host_load: &[f64],
    model: &dyn crate::model::MakespanModel,
) -> Option<Vec<u32>> {
    let pack = PackPlacement.assign(spec)?;
    let spread = SpreadPlacement.assign(spec)?;
    let t_pack = model.estimate(spec, &pack, hint, host_load);
    let t_spread = model.estimate(spec, &spread, hint, host_load);
    Some(if t_pack <= t_spread { pack } else { spread })
}

/// Selects a placement policy by value (config-friendly; trait objects
/// don't fit `PartialEq` configs).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum PlacementKind {
    /// Keep the spec's own placement ([`SpecPlacement`]).
    #[default]
    Spec,
    /// Consolidate onto few hosts ([`PackPlacement`]).
    Pack,
    /// Balance across all hosts ([`SpreadPlacement`]).
    Spread,
    /// Model-driven pick between pack and spread ([`AdaptivePlacement`]).
    Adaptive(WorkloadHint),
}

impl PlacementKind {
    /// Instantiates the policy this kind names.
    pub fn policy(&self) -> Box<dyn PlacementPolicy> {
        match self {
            PlacementKind::Spec => Box::new(SpecPlacement),
            PlacementKind::Pack => Box::new(PackPlacement),
            PlacementKind::Spread => Box::new(SpreadPlacement),
            PlacementKind::Adaptive(hint) => {
                Box::new(AdaptivePlacement { hint: *hint, host_load: Vec::new() })
            }
        }
    }

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementKind::Spec => "spec",
            PlacementKind::Pack => "pack",
            PlacementKind::Spread => "spread",
            PlacementKind::Adaptive(_) => "adaptive",
        }
    }

    /// The VM→host override for `spec`, if this kind produces one.
    pub fn assign(&self, spec: &ClusterSpec) -> Option<Vec<u32>> {
        self.policy().assign(spec)
    }
}

/// Applies a placement override to a spec in place (no-op on `None`).
pub fn apply_placement(spec: &mut ClusterSpec, map: Option<Vec<u32>>) {
    if let Some(map) = map {
        assert_eq!(map.len(), spec.vms as usize, "placement map must cover every VM");
        spec.placement = Placement::Custom(map);
    }
}

/// First-order makespan estimate of one task wave under `map`.
///
/// CPU side: VM 0 is the namenode (runs no tasks), so tasks land on the
/// remaining workers proportionally to each host's worker count. A host's
/// wave time is its guest work plus dom0's per-byte I/O tax, divided by
/// its effective cores (discounted by `host_load` and Xen's hypervisor
/// overhead). Wire side: shuffle bytes split into same-host traffic at
/// bridge speed and cross-host traffic at NIC speed, with the same-host
/// fraction Σ(wᕼ/W)² from random sender/receiver pairing; on a multi-rack
/// topology the cross-rack fraction 1 − Σ(wᵣ/W)² additionally squeezes
/// through the shared core switch (a term that is exactly zero on the
/// default single-rack fabric, where every pair is rack-local). The wave's
/// cost is the serialized sum of the two sides — pessimistic on overlap,
/// but it keeps the wire term visible when CPU dominates, which is exactly
/// where pack and spread tie on compute and differ only in shuffle path.
pub fn estimate_makespan(
    spec: &ClusterSpec,
    map: &[u32],
    hint: &WorkloadHint,
    host_load: &[f64],
) -> f64 {
    assert_eq!(map.len(), spec.vms as usize);
    let hosts = spec.hosts as usize;
    let mut workers = vec![0u32; hosts];
    for (vm, &h) in map.iter().enumerate() {
        if vm != 0 {
            // VM 0 hosts the namenode/jobtracker and takes no tasks.
            workers[h as usize] += 1;
        }
    }
    let total_workers: u32 = workers.iter().sum();
    if total_workers == 0 {
        return f64::INFINITY;
    }
    let tasks = f64::from(hint.tasks);
    let bytes_per_task = hint.shuffle_bytes_per_task as f64;
    let total_bytes = tasks * bytes_per_task;

    // Same-host shuffle fraction: sender and receiver drawn independently
    // from the worker population.
    let p_same: f64 = workers
        .iter()
        .map(|&w| {
            let f = f64::from(w) / f64::from(total_workers);
            f * f
        })
        .sum();

    // Per-host CPU time for the wave, including dom0's I/O tax on the
    // bytes its local workers move.
    let mut t_cpu: f64 = 0.0;
    for (h, &w) in workers.iter().enumerate() {
        if w == 0 {
            continue;
        }
        let share = f64::from(w) / f64::from(total_workers);
        let host_tasks = tasks * share;
        let guest_cycles = host_tasks * hint.cpu_secs_per_task * spec.host.core_hz;
        // dom0 charges for both directions of the host's shuffle bytes.
        let host_bytes = total_bytes * share * 2.0;
        let dom0_cycles = host_bytes * spec.xen.dom0_cycles_per_net_byte;
        let load = host_load.get(h).copied().unwrap_or(0.0).clamp(0.0, 1.0);
        let eff_cores =
            (f64::from(spec.host.cores) * (1.0 - load)).max(1.0) / spec.xen.cpu_overhead;
        // The wave can't use more cores than it has runnable tasks.
        let usable = eff_cores.min(host_tasks.max(1.0));
        t_cpu = t_cpu.max((guest_cycles + dom0_cycles) / (spec.host.core_hz * usable));
    }

    // Wire time: same-host bytes ride the bridge, cross-host bytes the NIC
    // (each host's NIC carries its egress share).
    let bridge = total_bytes * p_same / spec.host.bridge_bw.max(1.0);
    let busy_hosts = workers.iter().filter(|&&w| w > 0).count().max(1) as f64;
    let nic = total_bytes * (1.0 - p_same) / (spec.host.nic_bw.max(1.0) * busy_hosts);

    // Cross-rack bytes all funnel through the one core switch. With one
    // rack p_same_rack = 1 and the term vanishes, leaving the legacy
    // two-term estimate bit-for-bit.
    let mut rack_workers = vec![0u32; spec.topology.racks as usize];
    for (h, &w) in workers.iter().enumerate() {
        rack_workers[spec.rack_of_host(h as u32) as usize] += w;
    }
    let p_same_rack: f64 = rack_workers
        .iter()
        .map(|&w| {
            let f = f64::from(w) / f64::from(total_workers);
            f * f
        })
        .sum();
    let core_bw = if spec.topology.core_bw > 0.0 { spec.topology.core_bw } else { spec.switch_bw };
    let core = total_bytes * (1.0 - p_same_rack) / core_bw.max(1.0);
    let t_wire = bridge + nic + core;

    t_cpu + t_wire
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec::default() // 2 hosts × 8 cores, 16 VMs × 1 GiB
    }

    #[test]
    fn spec_policy_declines() {
        assert_eq!(SpecPlacement.assign(&spec()), None);
        assert_eq!(PlacementKind::Spec.assign(&spec()), None);
    }

    #[test]
    fn pack_fills_first_host_first() {
        let map = PackPlacement.assign(&spec()).unwrap();
        assert_eq!(map.len(), 16);
        assert!(map.iter().all(|&h| h == 0), "16 × 1 GiB VMs fit host 0's 32 GiB: {map:?}");
        let mut small = spec();
        small.host.dram = 8 * vcluster::spec::GIB;
        let map = PackPlacement.assign(&small).unwrap();
        assert_eq!(&map[..8], &[0; 8], "first 8 on host 0");
        assert_eq!(&map[8..], &[1; 8], "overflow spills to host 1");
    }

    #[test]
    fn spread_round_robins() {
        let map = SpreadPlacement.assign(&spec()).unwrap();
        assert_eq!(map[0], 0);
        assert_eq!(map[1], 1);
        assert_eq!(map[2], 0);
        assert_eq!(map.iter().filter(|&&h| h == 0).count(), 8);
    }

    #[test]
    fn apply_placement_rewrites_spec() {
        let mut s = spec();
        apply_placement(&mut s, None);
        assert_eq!(s.placement, Placement::SingleDomain, "None keeps the spec layout");
        let map = SpreadPlacement.assign(&s);
        apply_placement(&mut s, map);
        assert!(matches!(s.placement, Placement::Custom(_)));
        assert_eq!(s.host_of(1), 1);
        s.validate().expect("rewritten spec stays valid");
    }

    #[test]
    fn estimator_prefers_pack_for_cpu_bound_and_spread_for_shuffle_heavy() {
        let s = spec();
        let pack = PackPlacement.assign(&s).unwrap();
        let spread = SpreadPlacement.assign(&s).unwrap();
        // Few heavy tasks, modest shuffle: fits one host's cores, bridge wins.
        let cpu =
            WorkloadHint { tasks: 3, cpu_secs_per_task: 8.0, shuffle_bytes_per_task: 48 << 20 };
        assert!(
            estimate_makespan(&s, &pack, &cpu, &[]) < estimate_makespan(&s, &spread, &cpu, &[]),
            "cpu-bound should pack"
        );
        // Full wave of cheap tasks with big shuffles: oversubscription +
        // dom0 tax sink the packed host.
        let shf =
            WorkloadHint { tasks: 15, cpu_secs_per_task: 2.5, shuffle_bytes_per_task: 4 << 20 };
        assert!(
            estimate_makespan(&s, &spread, &shf, &[]) < estimate_makespan(&s, &pack, &shf, &[]),
            "shuffle-heavy should spread"
        );
    }

    #[test]
    fn adaptive_matches_the_cheaper_layout() {
        let s = spec();
        let cpu =
            WorkloadHint { tasks: 3, cpu_secs_per_task: 8.0, shuffle_bytes_per_task: 48 << 20 };
        let a = AdaptivePlacement { hint: cpu, host_load: Vec::new() };
        assert_eq!(a.assign(&s), PackPlacement.assign(&s), "adaptive packs the cpu-bound mix");
        let shf =
            WorkloadHint { tasks: 15, cpu_secs_per_task: 2.5, shuffle_bytes_per_task: 4 << 20 };
        let a = AdaptivePlacement { hint: shf, host_load: Vec::new() };
        assert_eq!(a.assign(&s), SpreadPlacement.assign(&s), "adaptive spreads the shuffle mix");
    }

    #[test]
    fn cross_rack_core_term_raises_spread_estimate() {
        // 4 hosts over 2 racks with a slow core: spreading across racks
        // pays the core; the same layout on one rack doesn't.
        let mut racked = ClusterSpec::builder().hosts(4).vms(16).racks(2).build();
        racked.topology.core_bw = 50e6; // much slower than the NICs
        let flat = ClusterSpec::builder().hosts(4).vms(16).build();
        let map = SpreadPlacement.assign(&racked).unwrap();
        let hint =
            WorkloadHint { tasks: 15, cpu_secs_per_task: 1.0, shuffle_bytes_per_task: 32 << 20 };
        let t_racked = estimate_makespan(&racked, &map, &hint, &[]);
        let t_flat = estimate_makespan(&flat, &map, &hint, &[]);
        assert!(
            t_racked > t_flat * 1.05,
            "slow core must show up in the estimate: racked {t_racked:.2}s vs flat {t_flat:.2}s"
        );
        // And with one rack the topology term is exactly zero: the
        // estimate equals the legacy two-term price.
        let mut one_rack = flat.clone();
        one_rack.topology.core_bw = 50e6; // ignored: no core exists
        assert_eq!(estimate_makespan(&one_rack, &map, &hint, &[]), t_flat);
    }

    #[test]
    fn background_load_tilts_adaptive_away_from_a_busy_host() {
        let s = spec();
        let cpu =
            WorkloadHint { tasks: 3, cpu_secs_per_task: 8.0, shuffle_bytes_per_task: 48 << 20 };
        let pack = PackPlacement.assign(&s).unwrap();
        let idle = estimate_makespan(&s, &pack, &cpu, &[]);
        let busy = estimate_makespan(&s, &pack, &cpu, &[0.9, 0.0]);
        assert!(busy > idle, "load on the packed host must raise its estimate");
    }
}
