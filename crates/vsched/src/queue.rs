//! Bounded admission queue with pluggable order, plus per-job SLO
//! tracking.
//!
//! Jobs arrive (open loop — the arrival process does not wait for the
//! cluster), are **admitted** into a bounded queue or rejected when it is
//! full, and are **started** by the controller whenever the cluster has a
//! free multiprogramming slot. The queue order is a policy choice:
//! first-come-first-served, shortest-expected-first, or per-tenant fair
//! share. Every transition is timestamped so the [`SloTracker`] can report
//! queue waits, makespans, and slowdowns per job.

use mapreduce::runtime::PendingJob;
use simcore::prelude::*;
use simcore::stats::{percentile_sorted, OnlineStats};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Order in which queued jobs are started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// Strict arrival order.
    #[default]
    Fifo,
    /// Smallest expected service time first (ties by arrival).
    ShortestFirst,
    /// Round-robin over tenants by jobs already started, earliest arrival
    /// within the chosen tenant.
    FairShare,
}

impl QueuePolicy {
    /// All policies, in display order.
    pub const ALL: [QueuePolicy; 3] =
        [QueuePolicy::Fifo, QueuePolicy::ShortestFirst, QueuePolicy::FairShare];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            QueuePolicy::Fifo => "fifo",
            QueuePolicy::ShortestFirst => "shortest-first",
            QueuePolicy::FairShare => "fair-share",
        }
    }
}

/// Admission-layer tunables.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueConfig {
    /// Maximum queued (admitted but not yet started) jobs; arrivals beyond
    /// this are rejected.
    pub capacity: usize,
    /// Start order of queued jobs.
    pub policy: QueuePolicy,
    /// Multiprogramming level: how many admitted jobs may run at once.
    pub max_active: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig { capacity: 32, policy: QueuePolicy::Fifo, max_active: 2 }
    }
}

/// One admitted job waiting to start.
#[derive(Debug)]
pub struct QueuedJob {
    /// Controller-local id (dense, assigned at offer time).
    pub ctrl_id: u32,
    /// Submitting tenant.
    pub tenant: u32,
    /// Admission instant.
    pub arrival: SimTime,
    /// Expected solo service time, seconds (ordering hint).
    pub expected_s: f64,
    /// The deferred job itself.
    pub job: PendingJob,
}

/// Bounded admission queue. Not a scheduler — it only decides *which*
/// admitted job starts next; the MapReduce engine still schedules tasks.
#[derive(Debug, Default)]
pub struct AdmissionQueue {
    cfg: QueueConfig,
    pending: Vec<QueuedJob>,
    /// Jobs started so far per tenant (fair-share bookkeeping).
    started_by_tenant: HashMap<u32, u64>,
    depth_hwm: usize,
}

impl AdmissionQueue {
    /// Empty queue under `cfg`.
    pub fn new(cfg: QueueConfig) -> Self {
        AdmissionQueue { cfg, ..Default::default() }
    }

    /// The active configuration.
    pub fn config(&self) -> &QueueConfig {
        &self.cfg
    }

    /// Queued job count.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Deepest the queue has ever been.
    pub fn depth_hwm(&self) -> usize {
        self.depth_hwm
    }

    /// Admits `job` unless the queue is full; returns whether it was
    /// admitted.
    pub fn offer(&mut self, job: QueuedJob) -> bool {
        if self.pending.len() >= self.cfg.capacity {
            return false;
        }
        self.pending.push(job);
        self.depth_hwm = self.depth_hwm.max(self.pending.len());
        true
    }

    /// Removes and returns the next job to start under the configured
    /// policy, bumping the fair-share account of its tenant.
    pub fn pop_next(&mut self) -> Option<QueuedJob> {
        if self.pending.is_empty() {
            return None;
        }
        let idx = match self.cfg.policy {
            // `pending` is in arrival order: index 0 is the oldest.
            QueuePolicy::Fifo => 0,
            QueuePolicy::ShortestFirst => self
                .pending
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.expected_s
                        .total_cmp(&b.expected_s)
                        .then(a.arrival.cmp(&b.arrival))
                        .then(a.ctrl_id.cmp(&b.ctrl_id))
                })
                .map(|(i, _)| i)
                .expect("non-empty"),
            QueuePolicy::FairShare => {
                let served = |t: u32| self.started_by_tenant.get(&t).copied().unwrap_or(0);
                self.pending
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        served(a.tenant)
                            .cmp(&served(b.tenant))
                            .then(a.arrival.cmp(&b.arrival))
                            .then(a.ctrl_id.cmp(&b.ctrl_id))
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty")
            }
        };
        let job = self.pending.remove(idx);
        *self.started_by_tenant.entry(job.tenant).or_insert(0) += 1;
        Some(job)
    }

    /// Clones of the queued deferred jobs keyed by controller id — the
    /// out-of-band half of a snapshot (submission closures cannot
    /// serialize; they ride along as live `Rc` clones instead).
    pub fn job_residue(&self) -> Vec<(u32, PendingJob)> {
        self.pending.iter().map(|q| (q.ctrl_id, q.job.clone())).collect()
    }

    /// Encodes queue state. The `PendingJob`s travel separately via
    /// [`AdmissionQueue::job_residue`].
    pub fn encode_state(&self, e: &mut Encoder) {
        self.pending.len().encode(e);
        for q in &self.pending {
            q.ctrl_id.encode(e);
            q.tenant.encode(e);
            q.arrival.encode(e);
            q.expected_s.encode(e);
        }
        self.started_by_tenant.encode(e);
        self.depth_hwm.encode(e);
    }

    /// Restores queue state, rejoining each entry with its deferred job
    /// from `residue`.
    pub fn restore_state(&mut self, d: &mut Decoder, residue: &HashMap<u32, PendingJob>) {
        let n = usize::decode(d);
        self.pending = (0..n)
            .map(|_| {
                let ctrl_id = u32::decode(d);
                let tenant = u32::decode(d);
                let arrival = SimTime::decode(d);
                let expected_s = f64::decode(d);
                let job = residue
                    .get(&ctrl_id)
                    .unwrap_or_else(|| panic!("snapshot residue missing queued job {ctrl_id}"))
                    .clone();
                QueuedJob { ctrl_id, tenant, arrival, expected_s, job }
            })
            .collect();
        self.started_by_tenant = HashMap::decode(d);
        self.depth_hwm = usize::decode(d);
    }
}

/// SLO thresholds a run is judged against.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Queue waits beyond this count as violations.
    pub max_queue_wait: SimDuration,
    /// Slowdowns (makespan ÷ expected solo time) beyond this count as
    /// violations.
    pub max_slowdown: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig { max_queue_wait: SimDuration::from_secs(60), max_slowdown: 8.0 }
    }
}

/// Lifecycle timestamps of one job, as the controller saw them.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSlo {
    /// Controller-local id.
    pub ctrl_id: u32,
    /// Submitting tenant.
    pub tenant: u32,
    /// Admission (or rejection) instant.
    pub arrival: SimTime,
    /// Whether the job was admitted into the queue at all.
    pub admitted: bool,
    /// When the controller handed it to the JobTracker.
    pub started: Option<SimTime>,
    /// When the JobTracker reported it done.
    pub finished: Option<SimTime>,
    /// Expected solo service time, seconds.
    pub expected_s: f64,
}

impl Persist for JobSlo {
    fn encode(&self, e: &mut Encoder) {
        self.ctrl_id.encode(e);
        self.tenant.encode(e);
        self.arrival.encode(e);
        self.admitted.encode(e);
        self.started.encode(e);
        self.finished.encode(e);
        self.expected_s.encode(e);
    }
    fn decode(d: &mut Decoder) -> Self {
        JobSlo {
            ctrl_id: u32::decode(d),
            tenant: u32::decode(d),
            arrival: SimTime::decode(d),
            admitted: bool::decode(d),
            started: Option::<SimTime>::decode(d),
            finished: Option::<SimTime>::decode(d),
            expected_s: f64::decode(d),
        }
    }
}

impl JobSlo {
    /// Admission-to-start wait, if the job has started.
    pub fn queue_wait(&self) -> Option<SimDuration> {
        self.started.map(|s| s.saturating_since(self.arrival))
    }

    /// Admission-to-finish span, if the job has finished.
    pub fn makespan(&self) -> Option<SimDuration> {
        self.finished.map(|f| f.saturating_since(self.arrival))
    }

    /// Makespan over expected solo service time.
    pub fn slowdown(&self) -> Option<f64> {
        self.makespan().map(|m| m.as_secs_f64() / self.expected_s.max(1e-9))
    }
}

/// Records per-job lifecycle events and distills them into an
/// [`SloReport`].
#[derive(Debug, Default)]
pub struct SloTracker {
    cfg: SloConfig,
    jobs: Vec<JobSlo>,
    by_id: HashMap<u32, usize>,
}

impl SloTracker {
    /// Empty tracker judging against `cfg`.
    pub fn new(cfg: SloConfig) -> Self {
        SloTracker { cfg, ..Default::default() }
    }

    /// Records an arrival (admitted or rejected).
    pub fn record_arrival(
        &mut self,
        ctrl_id: u32,
        tenant: u32,
        at: SimTime,
        expected_s: f64,
        admitted: bool,
    ) {
        self.by_id.insert(ctrl_id, self.jobs.len());
        self.jobs.push(JobSlo {
            ctrl_id,
            tenant,
            arrival: at,
            admitted,
            started: None,
            finished: None,
            expected_s,
        });
    }

    /// Records the job being handed to the JobTracker.
    pub fn record_start(&mut self, ctrl_id: u32, at: SimTime) {
        let i = self.by_id[&ctrl_id];
        self.jobs[i].started = Some(at);
    }

    /// Records job completion; returns the fresh SLO violations (0–2) this
    /// job contributed.
    pub fn record_finish(&mut self, ctrl_id: u32, at: SimTime) -> u64 {
        let i = self.by_id[&ctrl_id];
        self.jobs[i].finished = Some(at);
        let mut v = 0;
        if self.jobs[i].queue_wait().is_some_and(|w| w > self.cfg.max_queue_wait) {
            v += 1;
        }
        if self.jobs[i].slowdown().is_some_and(|s| s > self.cfg.max_slowdown) {
            v += 1;
        }
        v
    }

    /// Every job seen so far.
    pub fn jobs(&self) -> &[JobSlo] {
        &self.jobs
    }

    /// Encodes the per-job lifecycle records (`by_id` is derived).
    pub fn encode_state(&self, e: &mut Encoder) {
        self.jobs.encode(e);
    }

    /// Restores the lifecycle records, rebuilding the id index.
    pub fn restore_state(&mut self, d: &mut Decoder) {
        self.jobs = Vec::decode(d);
        self.by_id = self.jobs.iter().enumerate().map(|(i, j)| (j.ctrl_id, i)).collect();
    }

    /// Distills the recorded lifecycle into aggregate statistics.
    pub fn report(&self) -> SloReport {
        let mut waits: Vec<f64> =
            self.jobs.iter().filter_map(|j| j.queue_wait().map(|w| w.as_secs_f64())).collect();
        waits.sort_by(f64::total_cmp);
        let mut makespan = OnlineStats::new();
        let mut slowdown = OnlineStats::new();
        let mut violations = 0u64;
        for j in &self.jobs {
            if let Some(m) = j.makespan() {
                makespan.push(m.as_secs_f64());
            }
            if let Some(s) = j.slowdown() {
                slowdown.push(s);
                if s > self.cfg.max_slowdown {
                    violations += 1;
                }
            }
            if j.queue_wait().is_some_and(|w| w > self.cfg.max_queue_wait) {
                violations += 1;
            }
        }
        let pct = |p: f64| if waits.is_empty() { 0.0 } else { percentile_sorted(&waits, p) };
        SloReport {
            jobs: self.jobs.len() as u64,
            admitted: self.jobs.iter().filter(|j| j.admitted).count() as u64,
            rejected: self.jobs.iter().filter(|j| !j.admitted).count() as u64,
            started: self.jobs.iter().filter(|j| j.started.is_some()).count() as u64,
            finished: self.jobs.iter().filter(|j| j.finished.is_some()).count() as u64,
            starved: self.jobs.iter().filter(|j| j.admitted && j.started.is_none()).count() as u64,
            queue_wait_p50_s: pct(0.50),
            queue_wait_p95_s: pct(0.95),
            queue_wait_max_s: waits.last().copied().unwrap_or(0.0),
            makespan_mean_s: makespan.mean(),
            makespan_max_s: makespan.max().unwrap_or(0.0),
            slowdown_mean: slowdown.mean(),
            slowdown_max: slowdown.max().unwrap_or(0.0),
            violations,
        }
    }
}

/// Aggregate SLO statistics of one controller run.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Jobs the controller ever saw (admitted + rejected).
    pub jobs: u64,
    /// Jobs admitted into the queue.
    pub admitted: u64,
    /// Jobs rejected at the (full) queue.
    pub rejected: u64,
    /// Jobs handed to the JobTracker.
    pub started: u64,
    /// Jobs that completed.
    pub finished: u64,
    /// Admitted jobs that never started — must be 0 at the end of a
    /// drained run (the no-starvation guarantee).
    pub starved: u64,
    /// Median admission-to-start wait, seconds.
    pub queue_wait_p50_s: f64,
    /// 95th-percentile admission-to-start wait, seconds.
    pub queue_wait_p95_s: f64,
    /// Largest admission-to-start wait, seconds.
    pub queue_wait_max_s: f64,
    /// Mean admission-to-finish span, seconds.
    pub makespan_mean_s: f64,
    /// Largest admission-to-finish span, seconds.
    pub makespan_max_s: f64,
    /// Mean slowdown (makespan ÷ expected solo time).
    pub slowdown_mean: f64,
    /// Largest slowdown.
    pub slowdown_max: f64,
    /// SLO violations (queue wait + slowdown, counted per job).
    pub violations: u64,
}

impl SloReport {
    /// One-line human summary.
    pub fn to_line(&self) -> String {
        format!(
            "jobs {} (adm {} rej {} fin {} starved {})  wait p50 {:.1}s p95 {:.1}s  \
             slowdown mean {:.2} max {:.2}  violations {}",
            self.jobs,
            self.admitted,
            self.rejected,
            self.finished,
            self.starved,
            self.queue_wait_p50_s,
            self.queue_wait_p95_s,
            self.slowdown_mean,
            self.slowdown_max,
            self.violations,
        )
    }
}

/// Renders the report plus controller counters as the SLO-report JSON the
/// CI stage validates (hand-rolled — the offline build has no serde_json).
pub fn slo_report_json(
    report: &SloReport,
    counters: &crate::controller::ControllerCounters,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"report\": \"slo\",");
    let _ = writeln!(out, "  \"jobs\": {},", report.jobs);
    let _ = writeln!(out, "  \"admitted\": {},", report.admitted);
    let _ = writeln!(out, "  \"rejected\": {},", report.rejected);
    let _ = writeln!(out, "  \"started\": {},", report.started);
    let _ = writeln!(out, "  \"finished\": {},", report.finished);
    let _ = writeln!(out, "  \"starved\": {},", report.starved);
    let _ = writeln!(
        out,
        "  \"queue_wait_s\": {{ \"p50\": {}, \"p95\": {}, \"max\": {} }},",
        report.queue_wait_p50_s, report.queue_wait_p95_s, report.queue_wait_max_s
    );
    let _ = writeln!(
        out,
        "  \"makespan_s\": {{ \"mean\": {}, \"max\": {} }},",
        report.makespan_mean_s, report.makespan_max_s
    );
    let _ = writeln!(
        out,
        "  \"slowdown\": {{ \"mean\": {}, \"max\": {} }},",
        report.slowdown_mean, report.slowdown_max
    );
    let _ = writeln!(out, "  \"violations\": {},", report.violations);
    let _ = writeln!(out, "  \"counters\": {{");
    let _ = writeln!(out, "    \"queue_depth_hwm\": {},", counters.queue_depth_hwm);
    let _ = writeln!(out, "    \"migrations_planned\": {},", counters.migrations_planned);
    let _ = writeln!(out, "    \"migrations_completed\": {},", counters.migrations_completed);
    let _ = writeln!(out, "    \"migrations_aborted\": {},", counters.migrations_aborted);
    let _ = writeln!(out, "    \"rebalance_ticks\": {},", counters.rebalance_ticks);
    let _ = writeln!(out, "    \"consolidations\": {}", counters.consolidations);
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(ctrl_id: u32, tenant: u32, arrival_s: u64, expected_s: f64) -> QueuedJob {
        QueuedJob {
            ctrl_id,
            tenant,
            arrival: SimTime::from_secs(arrival_s),
            expected_s,
            job: PendingJob::new(format!("j{ctrl_id}"), |_| mapreduce::job::JobId(0)),
        }
    }

    #[test]
    fn bounded_queue_rejects_when_full() {
        let mut aq = AdmissionQueue::new(QueueConfig { capacity: 2, ..Default::default() });
        assert!(aq.offer(q(0, 0, 0, 1.0)));
        assert!(aq.offer(q(1, 0, 1, 1.0)));
        assert!(!aq.offer(q(2, 0, 2, 1.0)), "third job bounces off the bound");
        assert_eq!(aq.depth_hwm(), 2);
        assert_eq!(aq.len(), 2);
    }

    #[test]
    fn fifo_pops_in_arrival_order() {
        let mut aq = AdmissionQueue::new(QueueConfig::default());
        for (id, t) in [(0, 5), (1, 3), (2, 9)] {
            aq.offer(q(id, 0, t, 1.0));
        }
        let order: Vec<u32> = std::iter::from_fn(|| aq.pop_next().map(|j| j.ctrl_id)).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn shortest_first_orders_by_expected_cost() {
        let mut aq = AdmissionQueue::new(QueueConfig {
            policy: QueuePolicy::ShortestFirst,
            ..Default::default()
        });
        aq.offer(q(0, 0, 0, 9.0));
        aq.offer(q(1, 0, 1, 2.0));
        aq.offer(q(2, 0, 2, 5.0));
        let order: Vec<u32> = std::iter::from_fn(|| aq.pop_next().map(|j| j.ctrl_id)).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn fair_share_alternates_tenants() {
        let mut aq = AdmissionQueue::new(QueueConfig {
            policy: QueuePolicy::FairShare,
            ..Default::default()
        });
        // Tenant 0 floods first; tenant 1 arrives later but must not wait
        // behind the whole flood.
        for i in 0..3 {
            aq.offer(q(i, 0, u64::from(i), 1.0));
        }
        aq.offer(q(3, 1, 10, 1.0));
        aq.offer(q(4, 1, 11, 1.0));
        let order: Vec<u32> = std::iter::from_fn(|| aq.pop_next().map(|j| j.ctrl_id)).collect();
        assert_eq!(order, vec![0, 3, 1, 4, 2], "starts alternate between tenants");
    }

    #[test]
    fn slo_tracker_computes_waits_and_violations() {
        let mut t = SloTracker::new(SloConfig {
            max_queue_wait: SimDuration::from_secs(5),
            max_slowdown: 2.0,
        });
        t.record_arrival(0, 0, SimTime::from_secs(0), 10.0, true);
        t.record_start(0, SimTime::from_secs(1));
        assert_eq!(t.record_finish(0, SimTime::from_secs(11)), 0, "within both SLOs");
        t.record_arrival(1, 1, SimTime::from_secs(0), 2.0, true);
        t.record_start(1, SimTime::from_secs(8)); // waits 8 s > 5 s
        assert_eq!(t.record_finish(1, SimTime::from_secs(12)), 2, "wait + slowdown violated");
        let rep = t.report();
        assert_eq!(rep.jobs, 2);
        assert_eq!(rep.finished, 2);
        assert_eq!(rep.starved, 0);
        assert_eq!(rep.violations, 2);
        assert!(rep.queue_wait_max_s > 7.9);
        assert!(rep.slowdown_max > 5.9, "job 1: 12 s makespan over 2 s expected");
    }

    #[test]
    fn starved_counts_admitted_but_never_started() {
        let mut t = SloTracker::new(SloConfig::default());
        t.record_arrival(0, 0, SimTime::from_secs(0), 1.0, true);
        t.record_arrival(1, 0, SimTime::from_secs(0), 1.0, false);
        let rep = t.report();
        assert_eq!(rep.starved, 1, "rejected jobs are not starved, unstarted admitted ones are");
        assert_eq!(rep.rejected, 1);
    }
}
