//! The closed-loop controller: admission + start pump + rebalance ticks.
//!
//! One [`Controller`] owns the admission queue, SLO tracker, and (when
//! configured) a [`Rebalancer`](crate::rebalance::Rebalancer). The host
//! platform wires it into its event loop:
//!
//! 1. **arrivals** — [`Controller::schedule`] arms an `owners::CTRL` timer
//!    per future job; the platform forwards the wakeup to
//!    [`Controller::on_wakeup`], which admits (or rejects) the job;
//! 2. **starts** — whenever the queue or the active-job set changes, the
//!    controller pumps: while fewer than `max_active` jobs run, it pops the
//!    next queued job (per policy) and submits it to the JobTracker;
//! 3. **ticks** — with rebalancing on, a periodic `CTRL` timer samples
//!    host loads and may hand a bounded move plan to the migration
//!    manager;
//! 4. **completions** — the platform relays `JobDone` and migration
//!    events back so SLOs and counters stay current.
//!
//! Determinism: the controller reacts only to simulated wakeups and draws
//! no randomness of its own, so a controlled run stays a pure function of
//! (config, seed). Disabled (the default), it arms nothing and touches
//! nothing — traces are byte-identical to a controller-free platform.

use crate::model::{MakespanKind, MakespanModel};
use crate::placement::{assign_adaptive, PlacementKind, WorkloadHint};
use crate::queue::{
    slo_report_json, AdmissionQueue, JobSlo, QueueConfig, QueuedJob, SloConfig, SloReport,
    SloTracker,
};
use crate::rebalance::{RebalanceConfig, RebalanceMode, Rebalancer};
use mapreduce::job::JobEvent;
use mapreduce::runtime::{MrRuntime, PendingJob};
use simcore::owners;
use simcore::prelude::*;
use std::collections::HashMap;
use vcluster::cluster::{HostId, VirtualCluster, VmId};
use vcluster::energy::{EnergyMeter, EnergyReport, PowerModel};
use vcluster::migration::{MigrationEvent, MigrationManager};

/// `Tag.b` payload of a rebalance tick timer.
pub const TICK: u64 = 1;
/// `Tag.b` payload of a job-arrival timer (`Tag.a` = controller job id).
pub const ARRIVAL: u64 = 2;

/// Full control-plane configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerConfig {
    /// Master switch; `false` (the default) keeps the platform
    /// byte-identical to a controller-free build.
    pub enabled: bool,
    /// Admission-queue bounds and start order.
    pub queue: QueueConfig,
    /// VM placement applied when the platform boots.
    pub placement: PlacementKind,
    /// Periodic migration-driven rebalancing; `None` disables ticks.
    pub rebalance: Option<RebalanceConfig>,
    /// SLO thresholds for the report.
    pub slo: SloConfig,
    /// Power model behind the consolidation-energy report.
    pub power: PowerModel,
    /// Makespan model pricing adaptive placement and what-if rebalance
    /// candidates: the hand-priced baseline (the default) or a learned
    /// regression tree.
    pub model: MakespanKind,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            enabled: false,
            queue: QueueConfig::default(),
            placement: PlacementKind::Spec,
            rebalance: None,
            slo: SloConfig::default(),
            power: PowerModel::default(),
            model: MakespanKind::default(),
        }
    }
}

impl ControllerConfig {
    /// An enabled controller with the given placement and otherwise
    /// default knobs.
    pub fn enabled_with(placement: PlacementKind) -> Self {
        ControllerConfig { enabled: true, placement, ..Default::default() }
    }
}

/// Monotonic controller counters (exported into `MetricsSnapshot`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ControllerCounters {
    /// Jobs presented to admission.
    pub jobs_offered: u64,
    /// Jobs admitted into the queue.
    pub jobs_admitted: u64,
    /// Jobs bounced off the full queue.
    pub jobs_rejected: u64,
    /// Jobs handed to the JobTracker.
    pub jobs_started: u64,
    /// Jobs that completed.
    pub jobs_finished: u64,
    /// Deepest the admission queue ever got.
    pub queue_depth_hwm: u64,
    /// VM moves handed to the migration manager.
    pub migrations_planned: u64,
    /// VM moves that completed.
    pub migrations_completed: u64,
    /// Injected aborts survived by controller-planned migrations.
    pub migrations_aborted: u64,
    /// Rebalance ticks that sampled load.
    pub rebalance_ticks: u64,
    /// Consolidation plans fired.
    pub consolidations: u64,
    /// SLO violations accumulated so far.
    pub slo_violations: u64,
}

impl Persist for ControllerCounters {
    fn encode(&self, e: &mut Encoder) {
        self.jobs_offered.encode(e);
        self.jobs_admitted.encode(e);
        self.jobs_rejected.encode(e);
        self.jobs_started.encode(e);
        self.jobs_finished.encode(e);
        self.queue_depth_hwm.encode(e);
        self.migrations_planned.encode(e);
        self.migrations_completed.encode(e);
        self.migrations_aborted.encode(e);
        self.rebalance_ticks.encode(e);
        self.consolidations.encode(e);
        self.slo_violations.encode(e);
    }
    fn decode(d: &mut Decoder) -> Self {
        ControllerCounters {
            jobs_offered: u64::decode(d),
            jobs_admitted: u64::decode(d),
            jobs_rejected: u64::decode(d),
            jobs_started: u64::decode(d),
            jobs_finished: u64::decode(d),
            queue_depth_hwm: u64::decode(d),
            migrations_planned: u64::decode(d),
            migrations_completed: u64::decode(d),
            migrations_aborted: u64::decode(d),
            rebalance_ticks: u64::decode(d),
            consolidations: u64::decode(d),
            slo_violations: u64::decode(d),
        }
    }
}

#[derive(Debug)]
struct FutureArrival {
    tenant: u32,
    expected_s: f64,
    job: PendingJob,
}

/// One candidate migration plan priced by the configured makespan model,
/// awaiting fork-based measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfCandidate {
    /// The move set under evaluation.
    pub moves: Vec<(VmId, HostId)>,
    /// The configured [`MakespanModel`]'s price of the post-move layout,
    /// seconds.
    pub estimated_s: f64,
}

/// A deferred what-if evaluation. The controller never forks itself — it
/// parks the candidates here and the owning platform forks the whole
/// simulation per candidate, measures each fork's makespan, and commits
/// the winner through [`Controller::resolve_whatif`].
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfRequest {
    /// Candidate plans, model-priced, coldest destination first.
    pub candidates: Vec<WhatIfCandidate>,
    /// Name of the [`MakespanModel`] that priced the candidates (copied
    /// into every outcome, so estimator error stays attributable).
    pub model: String,
}

/// The measured outcome of one what-if candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfOutcome {
    /// When the evaluation ran.
    pub at: SimTime,
    /// The candidate move set.
    pub moves: Vec<(VmId, HostId)>,
    /// Model price of the post-move layout, seconds.
    pub estimated_s: f64,
    /// Fork-measured span until the fork drained, seconds.
    pub measured_s: f64,
    /// Whether this candidate was committed in the parent.
    pub chosen: bool,
    /// Name of the [`MakespanModel`] that produced `estimated_s`.
    pub model: String,
}

impl Persist for WhatIfOutcome {
    fn encode(&self, e: &mut Encoder) {
        self.at.encode(e);
        self.moves.encode(e);
        self.estimated_s.encode(e);
        self.measured_s.encode(e);
        self.chosen.encode(e);
        self.model.encode(e);
    }
    fn decode(d: &mut Decoder) -> Self {
        WhatIfOutcome {
            at: SimTime::decode(d),
            moves: Vec::decode(d),
            estimated_s: f64::decode(d),
            measured_s: f64::decode(d),
            chosen: bool::decode(d),
            model: String::decode(d),
        }
    }
}

/// The closed-loop control plane (see module docs for the wiring).
#[derive(Debug)]
pub struct Controller {
    cfg: ControllerConfig,
    queue: AdmissionQueue,
    slo: SloTracker,
    rebalancer: Option<Rebalancer>,
    counters: ControllerCounters,
    /// Scheduled-but-not-yet-arrived jobs, keyed by controller job id.
    future: HashMap<u32, FutureArrival>,
    /// JobTracker id → controller job id for running jobs.
    active: HashMap<u32, u32>,
    next_ctrl_id: u32,
    tick_armed: bool,
    energy: Option<EnergyMeter>,
    queue_depth_name: Option<Name>,
    active_jobs_name: Option<Name>,
    /// A what-if evaluation waiting for the platform to fork and measure.
    pending_whatif: Option<WhatIfRequest>,
    /// Fork-measured what-if outcomes so far.
    whatif_outcomes: Vec<WhatIfOutcome>,
    /// Runtime-only: set inside a what-if fork so rebalance ticks keep
    /// sampling but never plan (forks must not recurse). Never encoded —
    /// a fork's own snapshot starts un-suppressed like any parent.
    suppress_rebalance: bool,
}

impl Controller {
    /// New controller; call [`Controller::attach`] once the platform's
    /// engine and cluster exist.
    pub fn new(cfg: ControllerConfig) -> Self {
        let rebalancer = None; // sized at attach time (needs the host count)
        Controller {
            queue: AdmissionQueue::new(cfg.queue.clone()),
            slo: SloTracker::new(cfg.slo.clone()),
            rebalancer,
            counters: ControllerCounters::default(),
            future: HashMap::new(),
            active: HashMap::new(),
            next_ctrl_id: 0,
            tick_armed: false,
            energy: None,
            queue_depth_name: None,
            active_jobs_name: None,
            pending_whatif: None,
            whatif_outcomes: Vec::new(),
            suppress_rebalance: false,
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// The VM→host override this controller's placement policy produces
    /// for `spec` (applied by the platform before the cluster boots).
    /// Adaptive placement prices its candidates with the configured
    /// makespan model; the other policies are model-free.
    pub fn placement_map(&self, spec: &vcluster::spec::ClusterSpec) -> Option<Vec<u32>> {
        match &self.cfg.placement {
            PlacementKind::Adaptive(hint) => assign_adaptive(spec, hint, &[], &self.cfg.model),
            kind => kind.assign(spec),
        }
    }

    /// Binds the controller to a booted platform: sizes the rebalancer,
    /// starts the energy meter, interns counter names.
    pub fn attach(&mut self, engine: &mut Engine, cluster: &VirtualCluster) {
        if let Some(rb) = &self.cfg.rebalance {
            self.rebalancer = Some(Rebalancer::new(rb.clone(), cluster.host_count()));
        }
        self.energy = Some(EnergyMeter::start(engine, cluster, self.cfg.power));
        self.queue_depth_name = Some(engine.tracer_mut().intern("ctrl.queue_depth"));
        self.active_jobs_name = Some(engine.tracer_mut().intern("ctrl.active_jobs"));
    }

    /// Registers a job that arrives at `at` (open loop): arms a `CTRL`
    /// timer; admission happens when it fires. Returns the controller job
    /// id.
    pub fn schedule(
        &mut self,
        engine: &mut Engine,
        at: SimTime,
        tenant: u32,
        expected_s: f64,
        job: PendingJob,
    ) -> u32 {
        let id = self.next_ctrl_id;
        self.next_ctrl_id += 1;
        self.future.insert(id, FutureArrival { tenant, expected_s, job });
        // set_timer_at clamps past instants to now, so schedules built
        // before launch are safe.
        engine.set_timer_at(at, Tag::new(owners::CTRL, id, ARRIVAL));
        id
    }

    /// Admits `job` right now (or rejects it at a full queue); pumps
    /// starts. Returns whether the job was admitted.
    pub fn offer(
        &mut self,
        rt: &mut MrRuntime,
        migration: &mut MigrationManager,
        tenant: u32,
        expected_s: f64,
        job: PendingJob,
    ) -> bool {
        let id = self.next_ctrl_id;
        self.next_ctrl_id += 1;
        self.admit(rt, migration, id, tenant, expected_s, job)
    }

    fn admit(
        &mut self,
        rt: &mut MrRuntime,
        migration: &mut MigrationManager,
        ctrl_id: u32,
        tenant: u32,
        expected_s: f64,
        job: PendingJob,
    ) -> bool {
        let now = rt.engine.now();
        self.counters.jobs_offered += 1;
        let admitted =
            self.queue.offer(QueuedJob { ctrl_id, tenant, arrival: now, expected_s, job });
        self.slo.record_arrival(ctrl_id, tenant, now, expected_s, admitted);
        if admitted {
            self.counters.jobs_admitted += 1;
            rt.engine.trace_span(
                "ctrl",
                "admit",
                0,
                now,
                &[("job", f64::from(ctrl_id)), ("tenant", f64::from(tenant))],
            );
        } else {
            self.counters.jobs_rejected += 1;
            rt.engine.trace_span(
                "ctrl",
                "reject",
                0,
                now,
                &[("job", f64::from(ctrl_id)), ("tenant", f64::from(tenant))],
            );
        }
        self.counters.queue_depth_hwm = self.queue.depth_hwm() as u64;
        self.pump(rt);
        self.sample_counters(rt);
        self.ensure_tick(&mut rt.engine, migration);
        admitted
    }

    /// Handles an `owners::CTRL` wakeup (arrival or rebalance tick).
    pub fn on_wakeup(
        &mut self,
        rt: &mut MrRuntime,
        migration: &mut MigrationManager,
        wakeup: &Wakeup,
    ) {
        let Wakeup::Timer { tag, .. } = wakeup else { return };
        debug_assert_eq!(tag.owner, owners::CTRL);
        match tag.b {
            ARRIVAL => {
                if let Some(f) = self.future.remove(&tag.a) {
                    self.admit(rt, migration, tag.a, f.tenant, f.expected_s, f.job);
                }
            }
            TICK => {
                self.tick_armed = false;
                self.tick(rt, migration);
            }
            _ => {}
        }
    }

    /// Relays a JobTracker event; returns true when it closed a
    /// controller-started job.
    pub fn on_job_event(
        &mut self,
        rt: &mut MrRuntime,
        migration: &mut MigrationManager,
        ev: &JobEvent,
    ) -> bool {
        let JobEvent::JobDone(res) = ev else { return false };
        let Some(ctrl_id) = self.active.remove(&res.id.0) else { return false };
        let now = rt.engine.now();
        self.counters.jobs_finished += 1;
        self.counters.slo_violations += self.slo.record_finish(ctrl_id, now);
        rt.engine.trace_span("ctrl", "finish_job", 0, now, &[("job", f64::from(ctrl_id))]);
        self.pump(rt);
        self.sample_counters(rt);
        self.ensure_tick(&mut rt.engine, migration);
        true
    }

    /// Accounts controller-visible migration completions.
    pub fn on_migration_events(&mut self, events: &[MigrationEvent]) {
        for ev in events {
            if let MigrationEvent::AllDone(rep) = ev {
                self.counters.migrations_completed += rep.per_vm.len() as u64;
                self.counters.migrations_aborted +=
                    rep.per_vm.iter().map(|v| u64::from(v.aborts)).sum::<u64>();
            }
        }
    }

    /// One rebalance tick: sample loads, maybe plan moves, re-arm.
    fn tick(&mut self, rt: &mut MrRuntime, migration: &mut MigrationManager) {
        let now = rt.engine.now();
        if let Some(rb) = &mut self.rebalancer {
            self.counters.rebalance_ticks += 1;
            let loads = rb.sample(&rt.engine, &rt.cluster);
            for (h, l) in loads.iter().enumerate() {
                rt.engine.trace_span(
                    "ctrl",
                    "rebalance",
                    h as u32,
                    now,
                    &[("cpu", l.cpu), ("nic", l.nic)],
                );
            }
            // Plan only while a migration session isn't already running —
            // the session API is one-at-a-time. What-if forks never plan:
            // they exist to measure one already-chosen candidate.
            if !migration.busy() && !self.suppress_rebalance {
                let plan = rb.plan(now, &rt.cluster, &loads);
                if !plan.moves.is_empty() {
                    if rb.config().mode == RebalanceMode::WhatIf && !plan.consolidation {
                        // Defer: park every viable relief plan for the
                        // platform to fork-and-measure.
                        let src = rt.cluster.host_of(plan.moves[0].0);
                        let hint = rb.config().hint;
                        let cpu: Vec<f64> = loads.iter().map(|l| l.cpu).collect();
                        let model = &self.cfg.model;
                        let candidates: Vec<WhatIfCandidate> = rb
                            .candidate_plans(&rt.cluster, src, &loads)
                            .into_iter()
                            .map(|p| WhatIfCandidate {
                                estimated_s: estimate_plan(
                                    &rt.cluster,
                                    &p.moves,
                                    &hint,
                                    &cpu,
                                    model,
                                ),
                                moves: p.moves,
                            })
                            .collect();
                        rt.engine.trace_span(
                            "ctrl",
                            "whatif_defer",
                            0,
                            now,
                            &[("candidates", candidates.len() as f64)],
                        );
                        self.pending_whatif =
                            Some(WhatIfRequest { candidates, model: model.name().to_string() });
                    } else {
                        self.counters.migrations_planned += plan.moves.len() as u64;
                        if plan.consolidation {
                            self.counters.consolidations += 1;
                        }
                        rt.engine.trace_span(
                            "ctrl",
                            if plan.consolidation { "consolidate" } else { "plan_migration" },
                            0,
                            now,
                            &[("moves", plan.moves.len() as f64)],
                        );
                        migration.start_moves(&mut rt.engine, &rt.cluster, &plan.moves);
                    }
                }
            }
        }
        self.pump(rt);
        self.sample_counters(rt);
        self.ensure_tick(&mut rt.engine, migration);
    }

    /// Starts queued jobs while multiprogramming slots are free.
    fn pump(&mut self, rt: &mut MrRuntime) {
        while self.active.len() < self.queue.config().max_active {
            let Some(qj) = self.queue.pop_next() else { break };
            let now = rt.engine.now();
            self.slo.record_start(qj.ctrl_id, now);
            self.counters.jobs_started += 1;
            // The retroactive wait span covers admission → start.
            rt.engine.trace_span(
                "ctrl",
                "queue_wait",
                0,
                qj.arrival,
                &[("job", f64::from(qj.ctrl_id))],
            );
            rt.engine.trace_span(
                "ctrl",
                "start_job",
                0,
                now,
                &[("job", f64::from(qj.ctrl_id)), ("tenant", f64::from(qj.tenant))],
            );
            let job_id = qj.job.submit(rt);
            self.active.insert(job_id.0, qj.ctrl_id);
        }
    }

    /// Emits queue-depth / active-job counter samples.
    fn sample_counters(&mut self, rt: &mut MrRuntime) {
        if let (Some(qd), Some(aj)) = (self.queue_depth_name, self.active_jobs_name) {
            rt.engine.trace_counter(qd, self.queue.len() as f64);
            rt.engine.trace_counter(aj, self.active.len() as f64);
        }
    }

    /// Arms the next rebalance tick while there is anything to watch.
    fn ensure_tick(&mut self, engine: &mut Engine, migration: &MigrationManager) {
        let Some(rb) = &self.cfg.rebalance else { return };
        if self.tick_armed {
            return;
        }
        let work = !self.queue.is_empty()
            || !self.active.is_empty()
            || !self.future.is_empty()
            || migration.busy();
        if work {
            self.tick_armed = true;
            engine.set_timer_in(rb.interval, Tag::new(owners::CTRL, 0, TICK));
        }
    }

    /// True while jobs are queued, running, or still to arrive.
    pub fn has_work(&self) -> bool {
        !self.queue.is_empty() || !self.active.is_empty() || !self.future.is_empty()
    }

    /// Monotonic counters so far.
    pub fn counters(&self) -> &ControllerCounters {
        &self.counters
    }

    /// Aggregate SLO statistics so far.
    pub fn slo_report(&self) -> SloReport {
        self.slo.report()
    }

    /// Per-job SLO records in arrival order (queue-policy forensics).
    pub fn job_slos(&self) -> &[JobSlo] {
        self.slo.jobs()
    }

    /// The SLO report rendered as the JSON document CI validates.
    pub fn slo_report_json(&self) -> String {
        slo_report_json(&self.slo.report(), &self.counters)
    }

    /// Energy consumed since [`Controller::attach`], for the
    /// consolidation report. `None` before attach.
    pub fn energy_report(&self, engine: &Engine, cluster: &VirtualCluster) -> Option<EnergyReport> {
        self.energy.as_ref().map(|m| m.report(engine, cluster))
    }

    /// Takes the what-if evaluation deferred by the last tick, if any.
    pub fn take_whatif_request(&mut self) -> Option<WhatIfRequest> {
        self.pending_whatif.take()
    }

    /// Marks this controller as living inside a what-if fork: ticks keep
    /// sampling loads but never plan, so forks cannot recurse.
    pub fn set_suppress_rebalance(&mut self, on: bool) {
        self.suppress_rebalance = on;
    }

    /// Records fork-measured outcomes and commits the chosen plan (the
    /// one flagged `chosen`) through the migration manager.
    pub fn resolve_whatif(
        &mut self,
        rt: &mut MrRuntime,
        migration: &mut MigrationManager,
        outcomes: Vec<WhatIfOutcome>,
    ) {
        let now = rt.engine.now();
        let chosen = outcomes.iter().find(|o| o.chosen).cloned();
        self.whatif_outcomes.extend(outcomes);
        if let Some(c) = chosen {
            self.counters.migrations_planned += c.moves.len() as u64;
            rt.engine.trace_span(
                "ctrl",
                "whatif_commit",
                0,
                now,
                &[("moves", c.moves.len() as f64), ("measured_s", c.measured_s)],
            );
            migration.start_moves(&mut rt.engine, &rt.cluster, &c.moves);
        }
        self.ensure_tick(&mut rt.engine, migration);
    }

    /// Every fork-measured what-if outcome so far, in evaluation order.
    pub fn whatif_outcomes(&self) -> &[WhatIfOutcome] {
        &self.whatif_outcomes
    }

    /// Clones of every deferred job the controller still holds (queued in
    /// admission or scheduled for a future arrival), keyed by controller
    /// id — the out-of-band half of a snapshot.
    pub fn job_residue(&self) -> Vec<(u32, PendingJob)> {
        let mut out = self.queue.job_residue();
        out.extend(self.future.iter().map(|(&id, f)| (id, f.job.clone())));
        out.sort_by_key(|&(id, _)| id);
        out
    }

    /// Encodes all dynamic controller state. Config, placement, and
    /// interned counter names are not encoded: a restored controller is
    /// rebuilt by a fresh launch from the same config, which re-derives
    /// them identically.
    pub fn encode_state(&self, e: &mut Encoder) {
        self.counters.encode(e);
        self.queue.encode_state(e);
        self.slo.encode_state(e);
        match &self.rebalancer {
            Some(rb) => {
                true.encode(e);
                rb.encode_state(e);
            }
            None => false.encode(e),
        }
        let mut future: Vec<(u32, u32, f64)> =
            self.future.iter().map(|(&id, f)| (id, f.tenant, f.expected_s)).collect();
        future.sort_by_key(|&(id, _, _)| id);
        future.encode(e);
        self.active.encode(e);
        self.next_ctrl_id.encode(e);
        self.tick_armed.encode(e);
        match &self.energy {
            Some(m) => {
                true.encode(e);
                m.encode_state(e);
            }
            None => false.encode(e),
        }
        self.whatif_outcomes.encode(e);
    }

    /// Restores dynamic controller state over a freshly attached
    /// controller; `residue` supplies the deferred jobs by controller id.
    /// Arrival and tick timers come back through the engine snapshot, so
    /// nothing is re-armed here.
    pub fn restore_state(&mut self, d: &mut Decoder, residue: &HashMap<u32, PendingJob>) {
        self.counters = ControllerCounters::decode(d);
        self.queue.restore_state(d, residue);
        self.slo.restore_state(d);
        if bool::decode(d) {
            self.rebalancer
                .as_mut()
                .expect("snapshot has a rebalancer but the relaunched controller does not")
                .restore_state(d);
        }
        let future = Vec::<(u32, u32, f64)>::decode(d);
        self.future = future
            .into_iter()
            .map(|(id, tenant, expected_s)| {
                let job = residue
                    .get(&id)
                    .unwrap_or_else(|| panic!("snapshot residue missing scheduled job {id}"))
                    .clone();
                (id, FutureArrival { tenant, expected_s, job })
            })
            .collect();
        self.active = HashMap::decode(d);
        self.next_ctrl_id = u32::decode(d);
        self.tick_armed = bool::decode(d);
        if bool::decode(d) {
            self.energy
                .as_mut()
                .expect("snapshot has an energy meter but the controller is not attached")
                .restore_state(d);
        }
        self.whatif_outcomes = Vec::decode(d);
        self.pending_whatif = None;
    }
}

/// Prices the post-`moves` VM layout with the configured makespan model,
/// under the current per-host CPU background load.
fn estimate_plan(
    cluster: &VirtualCluster,
    moves: &[(VmId, HostId)],
    hint: &WorkloadHint,
    host_load: &[f64],
    model: &dyn MakespanModel,
) -> f64 {
    let mut map: Vec<u32> = cluster.vms().map(|v| cluster.host_of(v).0).collect();
    for &(vm, dst) in moves {
        map[vm.0 as usize] = dst.0;
    }
    model.estimate(cluster.spec(), &map, hint, host_load)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueuePolicy;
    use vcluster::migration::MigrationConfig;
    use vcluster::spec::{ClusterSpec, Placement};
    use vhdfs::hdfs::HdfsConfig;
    use workloads_stub::load_job;

    /// Minimal local stand-in for `workloads::load_job` (vsched must not
    /// depend on workloads; only the tests need a runnable job).
    mod workloads_stub {
        use mapreduce::prelude::*;

        #[derive(Debug, Clone, Copy)]
        struct Burn(f64);
        impl MapReduceApp for Burn {
            fn name(&self) -> &str {
                "burn"
            }
            fn map(&self, k: &K, _v: &V, out: &mut dyn FnMut(K, V)) {
                out(k.clone(), V::Int(1));
            }
            fn reduce(&self, k: &K, vs: &[V], out: &mut dyn FnMut(K, V)) {
                out(k.clone(), V::Int(vs.len() as i64));
            }
            fn cost(&self) -> CostProfile {
                CostProfile { map_cpu_per_record: self.0, ..Default::default() }
            }
        }

        pub fn load_job(run: u32, maps: u32, cpu_secs: f64) -> PendingJob {
            PendingJob::new(format!("burn-{run}"), move |rt: &mut MrRuntime| {
                let block = rt.hdfs.config().block_size;
                let path = format!("/burn/in-{run:04}");
                rt.register_input(&path, u64::from(maps) * block - 1, VmId(1));
                let input = GeneratorInput::new(maps as usize, block, |idx| {
                    vec![(K::Int(idx as i64), V::Null)]
                });
                let spec = JobSpec::new(format!("burn-{run}"), path, format!("/burn/out-{run:04}"))
                    .with_config(JobConfig::default().with_combiner(false));
                rt.submit(spec, Box::new(Burn(cpu_secs * 2.4e9)), Box::new(input))
            })
        }
    }

    fn rt() -> MrRuntime {
        let spec =
            ClusterSpec::builder().hosts(2).vms(6).placement(Placement::SingleDomain).build();
        MrRuntime::new(spec, HdfsConfig { block_size: 1 << 20, replication: 2 }, RootSeed(11))
    }

    fn drive(ctrl: &mut Controller, rt: &mut MrRuntime, mig: &mut MigrationManager) {
        let mut dirty = vcluster::migration::ConstantDirtyModel(0.0);
        while let Some((_, w)) = rt.engine.next_wakeup() {
            match w.tag().owner {
                owners::CTRL => ctrl.on_wakeup(rt, mig, &w),
                owners::MIGRATION => {
                    let evs = mig.on_wakeup(&mut rt.engine, &mut rt.cluster, &mut dirty, &w);
                    ctrl.on_migration_events(&evs);
                }
                _ => {
                    for ev in rt.route(&w) {
                        ctrl.on_job_event(rt, mig, &ev);
                    }
                }
            }
        }
    }

    #[test]
    fn controller_runs_a_scheduled_stream_to_completion() {
        let mut rt = rt();
        let mut mig = MigrationManager::new(MigrationConfig::default());
        let mut ctrl = Controller::new(ControllerConfig {
            enabled: true,
            queue: QueueConfig { max_active: 1, ..Default::default() },
            ..Default::default()
        });
        ctrl.attach(&mut rt.engine, &rt.cluster);
        for i in 0..3u32 {
            let job = load_job(i, 2, 0.2);
            ctrl.schedule(&mut rt.engine, SimTime::from_secs(u64::from(i)), 0, 1.0, job);
        }
        drive(&mut ctrl, &mut rt, &mut mig);
        let rep = ctrl.slo_report();
        assert_eq!(rep.jobs, 3);
        assert_eq!(rep.finished, 3);
        assert_eq!(rep.starved, 0, "drained run must start every admitted job");
        assert!(!ctrl.has_work());
        let c = ctrl.counters();
        assert_eq!(c.jobs_admitted, 3);
        assert_eq!(c.jobs_started, 3);
        assert_eq!(c.jobs_finished, 3);
        assert!(c.queue_depth_hwm >= 1, "max_active=1 forces queueing");
    }

    #[test]
    fn full_queue_rejects_and_reports() {
        let mut rt = rt();
        let mut mig = MigrationManager::new(MigrationConfig::default());
        let mut ctrl = Controller::new(ControllerConfig {
            enabled: true,
            queue: QueueConfig { capacity: 1, max_active: 1, ..Default::default() },
            ..Default::default()
        });
        ctrl.attach(&mut rt.engine, &rt.cluster);
        // All three arrive at t=0: one starts, one queues, one bounces.
        for i in 0..3u32 {
            ctrl.schedule(&mut rt.engine, SimTime::ZERO, 0, 1.0, load_job(i, 2, 0.2));
        }
        drive(&mut ctrl, &mut rt, &mut mig);
        let c = *ctrl.counters();
        assert_eq!(c.jobs_offered, 3);
        assert_eq!(c.jobs_rejected, 1);
        assert_eq!(c.jobs_finished, 2);
        assert_eq!(ctrl.slo_report().rejected, 1);
        assert_eq!(ctrl.slo_report().starved, 0);
    }

    #[test]
    fn shortest_first_reorders_queued_jobs() {
        let mut rt = rt();
        let mut mig = MigrationManager::new(MigrationConfig::default());
        let mut ctrl = Controller::new(ControllerConfig {
            enabled: true,
            queue: QueueConfig {
                policy: QueuePolicy::ShortestFirst,
                max_active: 1,
                ..Default::default()
            },
            ..Default::default()
        });
        ctrl.attach(&mut rt.engine, &rt.cluster);
        // Job 0 starts immediately; 1 (long) and 2 (short) queue behind it.
        ctrl.schedule(&mut rt.engine, SimTime::ZERO, 0, 1.0, load_job(0, 2, 0.2));
        ctrl.schedule(&mut rt.engine, SimTime::ZERO, 0, 9.0, load_job(1, 2, 0.2));
        ctrl.schedule(&mut rt.engine, SimTime::ZERO, 0, 2.0, load_job(2, 2, 0.2));
        drive(&mut ctrl, &mut rt, &mut mig);
        let jobs = ctrl.slo.jobs();
        let started = |id: u32| jobs.iter().find(|j| j.ctrl_id == id).unwrap().started.unwrap();
        assert!(started(2) < started(1), "the short job must start before the long one");
    }

    #[test]
    fn slo_json_has_the_schema_keys() {
        let ctrl = Controller::new(ControllerConfig::default());
        let json = ctrl.slo_report_json();
        for key in [
            "\"report\": \"slo\"",
            "\"starved\"",
            "\"queue_wait_s\"",
            "\"counters\"",
            "\"violations\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn disabled_controller_arms_nothing() {
        let mut rt = rt();
        let mut ctrl = Controller::new(ControllerConfig::default());
        ctrl.attach(&mut rt.engine, &rt.cluster);
        let mut mig = MigrationManager::new(MigrationConfig::default());
        ctrl.ensure_tick(&mut rt.engine, &mig);
        assert!(rt.engine.next_wakeup().is_none(), "no timers without rebalance config");
        drive(&mut ctrl, &mut rt, &mut mig);
        assert_eq!(ctrl.counters().rebalance_ticks, 0);
    }
}
