//! Gaussian Naive Bayes classification — the "classification" member of
//! the paper's Machine Learning Algorithm Library (Mahout ships a Bayes
//! classifier trained by MapReduce).
//!
//! Training is one MapReduce pass: mappers emit per-class sufficient
//! statistics `(Σx, Σx², n)` keyed by label, the reducer turns them into
//! per-class means/variances and a prior. Prediction is embarrassingly
//! parallel (a map-only pass here, a plain function in the reference).

use crate::mlrt::{MlRunStats, MlRuntime};
use mapreduce::prelude::*;
use serde::{Deserialize, Serialize};

/// A trained Gaussian Naive Bayes model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BayesModel {
    /// Per-class: `(prior, mean vector, variance vector)`.
    pub classes: Vec<ClassStats>,
}

/// Per-class parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Class label.
    pub label: usize,
    /// Prior probability.
    pub prior: f64,
    /// Feature means.
    pub mean: Vec<f64>,
    /// Feature variances (floored for stability).
    pub var: Vec<f64>,
}

/// Minimum variance to keep log-densities finite.
const VAR_FLOOR: f64 = 1e-6;

impl BayesModel {
    /// Trains on `(point, label)` pairs in memory.
    pub fn train(points: &[Vec<f64>], labels: &[usize]) -> BayesModel {
        assert_eq!(points.len(), labels.len(), "every point needs a label");
        assert!(!points.is_empty(), "empty training set");
        let dims = points[0].len();
        let max_label = labels.iter().copied().max().expect("non-empty");
        let mut suff: Vec<(Vec<f64>, Vec<f64>, u64)> =
            vec![(vec![0.0; dims], vec![0.0; dims], 0); max_label + 1];
        for (p, &l) in points.iter().zip(labels) {
            let s = &mut suff[l];
            for (d, &x) in p.iter().enumerate() {
                s.0[d] += x;
                s.1[d] += x * x;
            }
            s.2 += 1;
        }
        Self::from_suff(&suff, points.len() as u64)
    }

    /// Builds the model from per-class `(Σx, Σx², n)`.
    fn from_suff(suff: &[(Vec<f64>, Vec<f64>, u64)], total: u64) -> BayesModel {
        let classes = suff
            .iter()
            .enumerate()
            .filter(|(_, s)| s.2 > 0)
            .map(|(label, (sum, sum_sq, n))| {
                let nf = *n as f64;
                let mean: Vec<f64> = sum.iter().map(|&x| x / nf).collect();
                let var: Vec<f64> = sum_sq
                    .iter()
                    .zip(&mean)
                    .map(|(&xx, &m)| (xx / nf - m * m).max(VAR_FLOOR))
                    .collect();
                ClassStats { label, prior: nf / total as f64, mean, var }
            })
            .collect();
        BayesModel { classes }
    }

    /// Log-posterior (unnormalized) of class `c` for `x`.
    fn log_posterior(c: &ClassStats, x: &[f64]) -> f64 {
        let mut lp = c.prior.max(1e-12).ln();
        for (d, &xi) in x.iter().enumerate() {
            let v = c.var[d];
            let z = xi - c.mean[d];
            lp += -0.5 * (z * z / v + v.ln());
        }
        lp
    }

    /// Predicted label for `x`.
    pub fn predict(&self, x: &[f64]) -> usize {
        self.classes
            .iter()
            .map(|c| (c.label, Self::log_posterior(c, x)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
            .map(|(l, _)| l)
            .expect("trained model has classes")
    }

    /// Accuracy on a labelled set.
    pub fn accuracy(&self, points: &[Vec<f64>], labels: &[usize]) -> f64 {
        let correct = points.iter().zip(labels).filter(|(p, &l)| self.predict(p) == l).count();
        correct as f64 / points.len().max(1) as f64
    }
}

/// The training MapReduce pass. Mappers receive `(point_id, vector)` and
/// look the label up in the broadcast label table (Mahout broadcasts
/// the label index the same way).
#[derive(Debug, Clone)]
pub struct BayesTrainPass {
    /// Label per point id.
    pub labels: Vec<usize>,
}

impl MapReduceApp for BayesTrainPass {
    fn name(&self) -> &str {
        "bayes-train"
    }

    fn map(&self, k: &K, v: &V, out: &mut dyn FnMut(K, V)) {
        let x = v.as_vector();
        let label = self.labels[k.as_int() as usize];
        let sq: Vec<f64> = x.iter().map(|&a| a * a).collect();
        out(
            K::Int(label as i64),
            V::Tuple(vec![V::Vector(x.to_vec()), V::Vector(sq), V::Float(1.0)]),
        );
    }

    fn combine(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V)) -> bool {
        out(key.clone(), sum_stats(values));
        true
    }

    fn reduce(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V)) {
        out(key.clone(), sum_stats(values));
    }
}

fn sum_stats(values: &[V]) -> V {
    let mut sum: Option<Vec<f64>> = None;
    let mut sum_sq: Option<Vec<f64>> = None;
    let mut n = 0.0;
    for v in values {
        let t = v.as_tuple();
        n += t[2].as_float();
        match (&mut sum, &mut sum_sq) {
            (Some(s), Some(ss)) => {
                crate::vector::add_assign(s, t[0].as_vector());
                crate::vector::add_assign(ss, t[1].as_vector());
            }
            _ => {
                sum = Some(t[0].as_vector().to_vec());
                sum_sq = Some(t[1].as_vector().to_vec());
            }
        }
    }
    V::Tuple(vec![
        V::Vector(sum.expect("non-empty")),
        V::Vector(sum_sq.expect("non-empty")),
        V::Float(n),
    ])
}

/// Trains on the platform: one MapReduce pass over the loaded points.
pub fn train_mr(ml: &mut MlRuntime, labels: &[usize]) -> (BayesModel, MlRunStats) {
    assert_eq!(ml.points().len(), labels.len(), "every point needs a label");
    let total = ml.points().len() as u64;
    let dims = ml.points()[0].len();
    let max_label = labels.iter().copied().max().expect("non-empty");
    let app = BayesTrainPass { labels: labels.to_vec() };
    let result = ml.run_pass("bayes-train", Box::new(app), JobConfig::default().with_reduces(1));
    let mut suff: Vec<(Vec<f64>, Vec<f64>, u64)> =
        vec![(vec![0.0; dims], vec![0.0; dims], 0); max_label + 1];
    for (k, v) in &result.outputs {
        let t = v.as_tuple();
        let l = k.as_int() as usize;
        suff[l] = (t[0].as_vector().to_vec(), t[1].as_vector().to_vec(), t[2].as_float() as u64);
    }
    let stats = MlRunStats {
        iterations: 1,
        elapsed_s: result.elapsed_secs(),
        per_pass_s: vec![result.elapsed_secs()],
    };
    (BayesModel::from_suff(&suff, total), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{control_chart, gaussian_mixture};
    use simcore::rng::RootSeed;

    #[test]
    fn classifies_separated_gaussians() {
        let d = gaussian_mixture(RootSeed(40), 1);
        let model = BayesModel::train(&d.points, &d.labels);
        // The generating mixture overlaps; still expect good accuracy on
        // the tight component and decent overall.
        let acc = model.accuracy(&d.points, &d.labels);
        assert!(acc > 0.6, "training accuracy {acc:.2}");
    }

    #[test]
    fn control_chart_classes_are_learnable() {
        let train = control_chart(RootSeed(41), 60, 60);
        let test = control_chart(RootSeed(42), 20, 60);
        let model = BayesModel::train(&train.points, &train.labels);
        let acc = model.accuracy(&test.points, &test.labels);
        assert!(acc > 0.6, "held-out accuracy {acc:.2} (chance = 0.17)");
    }

    #[test]
    fn priors_sum_to_one() {
        let d = gaussian_mixture(RootSeed(43), 1);
        let model = BayesModel::train(&d.points, &d.labels);
        let total: f64 = model.classes.iter().map(|c| c.prior).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mr_training_matches_reference() {
        use vcluster::spec::{ClusterSpec, Placement};
        let d = gaussian_mixture(RootSeed(44), 1);
        let reference = BayesModel::train(&d.points, &d.labels);
        let spec =
            ClusterSpec::builder().hosts(2).vms(4).placement(Placement::SingleDomain).build();
        let mut ml = crate::mlrt::MlRuntime::new(spec, d.points.clone(), RootSeed(44));
        let (mr_model, stats) = train_mr(&mut ml, &d.labels);
        assert_eq!(mr_model.classes.len(), reference.classes.len());
        for (a, b) in mr_model.classes.iter().zip(&reference.classes) {
            assert!((a.prior - b.prior).abs() < 1e-12);
            for (x, y) in a.mean.iter().zip(&b.mean) {
                assert!((x - y).abs() < 1e-9, "means diverged");
            }
        }
        assert!(stats.elapsed_s > 0.0);
    }
}
