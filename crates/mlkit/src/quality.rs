//! Clustering quality metrics.

use crate::mlrt::Clustering;
use crate::vector::{nearest, Distance};
use std::collections::HashMap;

/// Within-cluster sum of squares (k-means objective).
pub fn wcss(points: &[Vec<f64>], model: &Clustering) -> f64 {
    points.iter().map(|p| nearest(p, &model.centers, Distance::SquaredEuclidean).1).sum()
}

/// Purity against ground-truth labels: each cluster votes for its
/// majority class; purity = correctly-voted fraction. 1.0 is perfect.
///
/// # Panics
/// If assignments and labels differ in length or are empty.
pub fn purity(labels: &[usize], assignments: &[usize]) -> f64 {
    assert_eq!(labels.len(), assignments.len(), "length mismatch");
    assert!(!labels.is_empty(), "empty clustering");
    let mut table: HashMap<usize, HashMap<usize, usize>> = HashMap::new();
    for (&l, &a) in labels.iter().zip(assignments) {
        *table.entry(a).or_default().entry(l).or_insert(0) += 1;
    }
    let correct: usize =
        table.values().map(|votes| votes.values().copied().max().unwrap_or(0)).sum();
    correct as f64 / labels.len() as f64
}

/// Rand index: fraction of point pairs on which two labelings agree
/// (same-cluster vs. different-cluster). 1.0 is identical structure.
pub fn rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    assert!(n >= 2, "need at least two points");
    let mut agree = 0u64;
    let mut total = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            total += 1;
            let same_a = a[i] == a[j];
            let same_b = b[i] == b[j];
            if same_a == same_b {
                agree += 1;
            }
        }
    }
    agree as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purity_perfect_and_random() {
        let labels = vec![0, 0, 1, 1];
        assert_eq!(purity(&labels, &[5, 5, 9, 9]), 1.0);
        assert_eq!(purity(&labels, &[1, 1, 1, 1]), 0.5);
    }

    #[test]
    fn rand_index_bounds() {
        let a = vec![0, 0, 1, 1];
        assert_eq!(rand_index(&a, &a), 1.0);
        let flipped = vec![1, 1, 0, 0];
        assert_eq!(rand_index(&a, &flipped), 1.0, "relabeling is invisible");
        let bad = vec![0, 1, 0, 1];
        assert!(rand_index(&a, &bad) < 0.5);
    }

    #[test]
    fn wcss_zero_for_points_on_centers() {
        let points = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        let model = Clustering { centers: points.clone(), assignments: vec![0, 1] };
        assert_eq!(wcss(&points, &model), 0.0);
    }
}
