//! # mlkit — Mahout-style MapReduce-based parallel machine learning
//!
//! The paper's Machine Learning Algorithm Library: the six clustering
//! algorithms it evaluates (Canopy, Dirichlet, Fuzzy k-means, k-means,
//! MeanShift, MinHash), each implemented twice —
//!
//! * an **in-memory reference** (plain Rust, used for correctness
//!   testing and as the sequential baseline), and
//! * a **MapReduce formulation** faithful to Mahout's drivers, running on
//!   the simulated vHadoop platform via [`mlrt::MlRuntime`] with real
//!   data and simulated time;
//!
//! plus the paper's two data sets ([`datasets`]), quality metrics
//! ([`quality`]), and the DisplayClustering-style visualizer
//! ([`display`]). [`suite`] wraps everything behind one driver for the
//! Fig. 6/7 cluster-scale sweeps. The library's other two categories from
//! the paper's module description are covered by [`bayes`]
//! (classification) and [`recommend`] (recommendations).

#![warn(missing_docs)]

pub mod bayes;
pub mod canopy;
pub mod datasets;
pub mod dirichlet;
pub mod display;
pub mod fuzzy;
pub mod kmeans;
pub mod meanshift;
pub mod minhash;
pub mod mlrt;
pub mod quality;
pub mod recommend;
pub mod suite;
pub mod vector;

/// Convenience imports.
pub mod prelude {
    pub use crate::bayes::{BayesModel, ClassStats};
    pub use crate::canopy::{build_canopies, CanopyParams};
    pub use crate::datasets::{
        control_chart, control_chart_600, gaussian_mixture, gaussian_mixture_1000, Dataset,
    };
    pub use crate::dirichlet::{DirichletModel, DirichletParams};
    pub use crate::display::{render_ascii, render_svg, IterationTrail};
    pub use crate::fuzzy::FuzzyKMeansParams;
    pub use crate::kmeans::KMeansParams;
    pub use crate::meanshift::MeanShiftParams;
    pub use crate::minhash::MinHashParams;
    pub use crate::mlrt::{Clustering, MlRunStats, MlRuntime};
    pub use crate::quality::{purity, rand_index, wcss};
    pub use crate::recommend::{cooccurrence, synthetic_ratings, ItemSimilarity, Rating};
    pub use crate::suite::{run_algorithm, scaled_cluster, Algorithm, DatasetKind, SuiteRun};
    pub use crate::vector::Distance;
}
