//! k-means clustering — reference implementation and Mahout-style
//! MapReduce formulation.
//!
//! MR shape (Mahout `KMeansDriver`): the mapper assigns each point to its
//! nearest current center and emits `(center, (Σx, n))` partials, the
//! combiner pre-aggregates, the reducer averages into new centers; the
//! driver re-broadcasts centers and iterates until movement falls below
//! the convergence delta.

use crate::mlrt::{sum_weighted_tuples, Clustering, MlRunStats, MlRuntime};
use crate::vector::{nearest, scale, Distance};
use mapreduce::prelude::*;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simcore::rng::RootSeed;

/// k-means parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansParams {
    /// Number of clusters.
    pub k: usize,
    /// Iteration cap.
    pub max_iters: u32,
    /// Stop when every center moves less than this (Euclidean).
    pub convergence: f64,
    /// Distance measure.
    pub distance: Distance,
}

impl Default for KMeansParams {
    fn default() -> Self {
        KMeansParams { k: 6, max_iters: 10, convergence: 0.5, distance: Distance::Euclidean }
    }
}

/// k-means++ seeding: the first center uniform, each next center sampled
/// with probability proportional to its squared distance from the nearest
/// chosen center (Arthur & Vassilvitskii, 2007).
pub fn init_centers(points: &[Vec<f64>], k: usize, seed: RootSeed) -> Vec<Vec<f64>> {
    assert!(k > 0 && k <= points.len(), "k must be in 1..=n");
    let mut rng = seed.stream("kmeans-init");
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    centers.push(points[rng.gen_range(0..points.len())].clone());
    let mut d2: Vec<f64> =
        points.iter().map(|p| Distance::SquaredEuclidean.between(p, &centers[0])).collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a center; pick uniformly.
            rng.gen_range(0..points.len())
        } else {
            let mut u: f64 = rng.gen_range(0.0..total);
            let mut pick = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                u -= w;
                if u <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        centers.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            let d = Distance::SquaredEuclidean.between(p, centers.last().expect("just pushed"));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centers
}

/// One in-memory k-means iteration; returns new centers (empty clusters
/// keep their old center) and the largest center movement.
pub fn lloyd_step(
    points: &[Vec<f64>],
    centers: &[Vec<f64>],
    distance: Distance,
) -> (Vec<Vec<f64>>, f64) {
    let dims = centers[0].len();
    let mut sums = vec![vec![0.0; dims]; centers.len()];
    let mut counts = vec![0usize; centers.len()];
    for p in points {
        let (c, _) = nearest(p, centers, distance);
        crate::vector::add_assign(&mut sums[c], p);
        counts[c] += 1;
    }
    let mut moved: f64 = 0.0;
    let new_centers: Vec<Vec<f64>> = sums
        .into_iter()
        .zip(&counts)
        .zip(centers)
        .map(|((mut s, &n), old)| {
            if n == 0 {
                old.clone()
            } else {
                scale(&mut s, 1.0 / n as f64);
                moved = moved.max(Distance::Euclidean.between(&s, old));
                s
            }
        })
        .collect();
    (new_centers, moved)
}

/// In-memory reference: full Lloyd iterations. Returns the model and the
/// iteration count.
pub fn reference(points: &[Vec<f64>], params: KMeansParams, seed: RootSeed) -> (Clustering, u32) {
    let mut centers = init_centers(points, params.k, seed);
    let mut iters = 0;
    for _ in 0..params.max_iters {
        iters += 1;
        let (next, moved) = lloyd_step(points, &centers, params.distance);
        centers = next;
        if moved < params.convergence {
            break;
        }
    }
    let assignments = points.iter().map(|p| nearest(p, &centers, params.distance).0).collect();
    (Clustering { centers, assignments }, iters)
}

/// One k-means MapReduce pass (the app broadcast to every mapper).
#[derive(Debug, Clone)]
pub struct KMeansPass {
    /// Current centers.
    pub centers: Vec<Vec<f64>>,
    /// Distance measure.
    pub distance: Distance,
}

impl MapReduceApp for KMeansPass {
    fn name(&self) -> &str {
        "kmeans"
    }

    fn map(&self, _k: &K, v: &V, out: &mut dyn FnMut(K, V)) {
        let p = v.as_vector();
        let (c, _) = nearest(p, &self.centers, self.distance);
        out(K::Int(c as i64), V::Tuple(vec![V::Vector(p.to_vec()), V::Float(1.0)]));
    }

    fn combine(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V)) -> bool {
        let (sum, w) = sum_weighted_tuples(values);
        out(key.clone(), V::Tuple(vec![V::Vector(sum), V::Float(w)]));
        true
    }

    fn reduce(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V)) {
        let (mut sum, w) = sum_weighted_tuples(values);
        scale(&mut sum, 1.0 / w);
        out(key.clone(), V::Vector(sum));
    }
}

/// Runs k-means as a MapReduce job sequence on `ml`, with a final
/// assignment pass. Returns the model and run statistics.
pub fn run_mr(
    ml: &mut MlRuntime,
    params: KMeansParams,
    seed: RootSeed,
) -> (Clustering, MlRunStats) {
    let mut centers = init_centers(ml.points(), params.k, seed);
    let mut per_pass = Vec::new();
    let mut iters = 0;
    for _ in 0..params.max_iters {
        iters += 1;
        let app = KMeansPass { centers: centers.clone(), distance: params.distance };
        let result = ml.run_pass("kmeans", Box::new(app), JobConfig::default().with_reduces(1));
        per_pass.push(result.elapsed_secs());
        let mut next = centers.clone();
        let mut moved: f64 = 0.0;
        for (k, v) in &result.outputs {
            let c = k.as_int() as usize;
            let nc = v.as_vector().to_vec();
            moved = moved.max(Distance::Euclidean.between(&nc, &centers[c]));
            next[c] = nc;
        }
        centers = next;
        if moved < params.convergence {
            break;
        }
    }
    let assignments = ml.assign(&centers, params.distance);
    let elapsed_s = per_pass.iter().sum();
    (
        Clustering { centers, assignments },
        MlRunStats { iterations: iters, elapsed_s, per_pass_s: per_pass },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::gaussian_mixture;
    use vcluster::spec::{ClusterSpec, Placement};

    fn three_blobs() -> Vec<Vec<f64>> {
        // Tight, well-separated blobs for unambiguous convergence.
        let mut pts = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 10.0), (-10.0, 8.0)] {
            for i in 0..20 {
                let dx = (i % 5) as f64 * 0.1;
                let dy = (i / 5) as f64 * 0.1;
                pts.push(vec![cx + dx, cy + dy]);
            }
        }
        pts
    }

    #[test]
    fn reference_finds_blobs() {
        let pts = three_blobs();
        let params =
            KMeansParams { k: 3, max_iters: 20, convergence: 1e-3, distance: Distance::Euclidean };
        let (model, iters) = reference(&pts, params, RootSeed(5));
        assert!(iters <= 20);
        assert_eq!(model.k(), 3);
        // Every blob maps to a single cluster.
        for blob in 0..3 {
            let first = model.assignments[blob * 20];
            assert!(
                model.assignments[blob * 20..(blob + 1) * 20].iter().all(|&a| a == first),
                "blob {blob} split across clusters"
            );
        }
    }

    #[test]
    fn cost_never_increases() {
        let pts = gaussian_mixture(RootSeed(6), 1).points;
        let params = KMeansParams::default();
        let mut centers = init_centers(&pts, params.k, RootSeed(6));
        let wcss = |cs: &[Vec<f64>]| -> f64 {
            pts.iter().map(|p| nearest(p, cs, Distance::Euclidean).1.powi(2)).sum()
        };
        let mut prev = wcss(&centers);
        for _ in 0..8 {
            let (next, _) = lloyd_step(&pts, &centers, Distance::Euclidean);
            centers = next;
            let cur = wcss(&centers);
            assert!(cur <= prev + 1e-9, "k-means cost increased: {prev} -> {cur}");
            prev = cur;
        }
    }

    #[test]
    fn mr_matches_reference() {
        let pts = three_blobs();
        let spec =
            ClusterSpec::builder().hosts(2).vms(4).placement(Placement::SingleDomain).build();
        let mut ml = MlRuntime::new(spec, pts.clone(), RootSeed(7));
        let params =
            KMeansParams { k: 3, max_iters: 20, convergence: 1e-3, distance: Distance::Euclidean };
        let (mr_model, stats) = run_mr(&mut ml, params, RootSeed(5));
        let (ref_model, _) = reference(&pts, params, RootSeed(5));
        // Same seed, same init → identical centers (up to fp noise).
        for (a, b) in mr_model.centers.iter().zip(&ref_model.centers) {
            assert!(Distance::Euclidean.between(a, b) < 1e-9, "MR and reference diverged");
        }
        assert!(stats.elapsed_s > 0.0);
        assert_eq!(stats.per_pass_s.len(), stats.iterations as usize);
    }
}
