//! Cluster visualization — the `DisplayClustering` analogue (paper
//! Fig. 8).
//!
//! Mahout's demo draws the sample points and superimposes each iteration's
//! cluster parameters, the last iteration bold, earlier ones fading. We
//! render the same semantics as SVG (for files) and ASCII (for terminals),
//! no GUI required.

use crate::mlrt::Clustering;

/// Per-iteration snapshots of the model (oldest first).
#[derive(Debug, Clone, Default)]
pub struct IterationTrail {
    /// Center sets, one per iteration.
    pub iterations: Vec<Vec<Vec<f64>>>,
}

impl IterationTrail {
    /// Empty trail.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one iteration's centers.
    pub fn push(&mut self, centers: Vec<Vec<f64>>) {
        self.iterations.push(centers);
    }
}

/// Mahout DisplayClustering's overlay palette: the last iteration is
/// bold red, the previous ones orange/yellow/green/blue/magenta, older
/// ones grey.
const TRAIL_COLORS: [&str; 6] = ["#d62728", "#ff7f0e", "#e6c700", "#2ca02c", "#1f77b4", "#c23bd8"];
const OLD_COLOR: &str = "#c8c8c8";

fn bounds(points: &[Vec<f64>]) -> (f64, f64, f64, f64) {
    let (mut xmin, mut xmax, mut ymin, mut ymax) =
        (f64::INFINITY, f64::NEG_INFINITY, f64::INFINITY, f64::NEG_INFINITY);
    for p in points {
        xmin = xmin.min(p[0]);
        xmax = xmax.max(p[0]);
        ymin = ymin.min(p[1]);
        ymax = ymax.max(p[1]);
    }
    let pad_x = (xmax - xmin).max(1e-9) * 0.05;
    let pad_y = (ymax - ymin).max(1e-9) * 0.05;
    (xmin - pad_x, xmax + pad_x, ymin - pad_y, ymax + pad_y)
}

/// Renders 2-D `points` (colored by final assignment) with the iteration
/// trail superimposed, as a standalone SVG document.
///
/// # Panics
/// If points are not 2-dimensional.
pub fn render_svg(
    title: &str,
    points: &[Vec<f64>],
    model: &Clustering,
    trail: &IterationTrail,
    width: u32,
    height: u32,
) -> String {
    assert!(points.iter().all(|p| p.len() == 2), "SVG renderer needs 2-D points");
    let (xmin, xmax, ymin, ymax) = bounds(points);
    let sx = |x: f64| (x - xmin) / (xmax - xmin) * f64::from(width);
    let sy = |y: f64| f64::from(height) - (y - ymin) / (ymax - ymin) * f64::from(height);

    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n\
         <text x=\"8\" y=\"16\" font-family=\"sans-serif\" font-size=\"13\">{title}</text>\n"
    ));
    // Points, colored by assignment.
    const POINT_COLORS: [&str; 8] =
        ["#4c72b0", "#dd8452", "#55a868", "#c44e52", "#8172b3", "#937860", "#da8bc3", "#8c8c8c"];
    for (i, p) in points.iter().enumerate() {
        let c =
            model.assignments.get(i).map_or("#999999", |&a| POINT_COLORS[a % POINT_COLORS.len()]);
        svg.push_str(&format!(
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"1.6\" fill=\"{c}\" fill-opacity=\"0.55\"/>\n",
            sx(p[0]),
            sy(p[1])
        ));
    }
    // Iteration trail: oldest grey, recent colored, last bold red.
    let n = trail.iterations.len();
    for (it, centers) in trail.iterations.iter().enumerate() {
        let from_end = n - 1 - it;
        let (color, swidth) = if from_end < TRAIL_COLORS.len() {
            (TRAIL_COLORS[from_end], if from_end == 0 { 2.5 } else { 1.2 })
        } else {
            (OLD_COLOR, 0.8)
        };
        for c in centers {
            svg.push_str(&format!(
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"10\" fill=\"none\" stroke=\"{color}\" \
                 stroke-width=\"{swidth}\"/>\n",
                sx(c[0]),
                sy(c[1])
            ));
        }
    }
    svg.push_str("</svg>\n");
    svg
}

/// Renders a terminal scatter plot: digits mark cluster assignment,
/// `*` marks final centers.
pub fn render_ascii(points: &[Vec<f64>], model: &Clustering, cols: usize, rows: usize) -> String {
    assert!(points.iter().all(|p| p.len() == 2), "ASCII renderer needs 2-D points");
    let (xmin, xmax, ymin, ymax) = bounds(points);
    let mut grid = vec![vec![' '; cols]; rows];
    let place = |x: f64, y: f64| -> (usize, usize) {
        let cx = ((x - xmin) / (xmax - xmin) * (cols - 1) as f64).round() as usize;
        let cy = ((ymax - y) / (ymax - ymin) * (rows - 1) as f64).round() as usize;
        (cx.min(cols - 1), cy.min(rows - 1))
    };
    for (i, p) in points.iter().enumerate() {
        let (cx, cy) = place(p[0], p[1]);
        let ch = model
            .assignments
            .get(i)
            .map_or('.', |&a| char::from_digit((a % 10) as u32, 10).expect("digit"));
        grid[cy][cx] = ch;
    }
    for c in &model.centers {
        let (cx, cy) = place(c[0], c[1]);
        grid[cy][cx] = '*';
    }
    let mut out = String::with_capacity(rows * (cols + 1));
    for row in grid {
        out.extend(row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> (Vec<Vec<f64>>, Clustering, IterationTrail) {
        let points = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![5.0, 5.0]];
        let model = Clustering {
            centers: vec![vec![0.5, 0.5], vec![5.0, 5.0]],
            assignments: vec![0, 0, 1],
        };
        let mut trail = IterationTrail::new();
        trail.push(vec![vec![0.0, 0.0], vec![4.0, 4.0]]);
        trail.push(model.centers.clone());
        (points, model, trail)
    }

    #[test]
    fn svg_is_well_formed_ish() {
        let (points, model, trail) = tiny_model();
        let svg = render_svg("test", &points, &model, &trail, 400, 300);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<circle").count(), 3 + 4, "3 points + 2×2 trail rings");
        assert!(svg.contains("#d62728"), "last iteration bold red");
    }

    #[test]
    fn ascii_marks_centers_and_points() {
        let (points, model, _) = tiny_model();
        let art = render_ascii(&points, &model, 40, 12);
        assert_eq!(art.lines().count(), 12);
        assert!(art.contains('*'), "centers marked");
        assert!(art.contains('0') || art.contains('1'), "points marked by cluster");
    }

    #[test]
    #[should_panic(expected = "2-D")]
    fn rejects_high_dimensional_points() {
        let model = Clustering { centers: vec![], assignments: vec![] };
        let _ = render_ascii(&[vec![1.0, 2.0, 3.0]], &model, 10, 10);
    }
}
