//! The clustering suite: a uniform driver over all six algorithms for the
//! scale sweeps of the paper's Figs. 6 and 7.

use crate::mlrt::{Clustering, MlRunStats, MlRuntime};
use crate::{canopy, dirichlet, fuzzy, kmeans, meanshift, minhash};
use serde::{Deserialize, Serialize};
use simcore::rng::RootSeed;
use vcluster::spec::{ClusterSpec, Placement};

/// The six Mahout clustering algorithms the paper runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Canopy clustering.
    Canopy,
    /// Dirichlet process clustering.
    Dirichlet,
    /// Fuzzy k-means.
    FuzzyKMeans,
    /// k-means.
    KMeans,
    /// Mean-shift canopy clustering.
    MeanShift,
    /// MinHash clustering.
    MinHash,
}

impl Algorithm {
    /// All six, in the paper's listing order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Canopy,
        Algorithm::Dirichlet,
        Algorithm::FuzzyKMeans,
        Algorithm::KMeans,
        Algorithm::MeanShift,
        Algorithm::MinHash,
    ];

    /// The Fig. 6 subset (canopy, dirichlet, meanshift).
    pub const FIG6: [Algorithm; 3] =
        [Algorithm::Canopy, Algorithm::Dirichlet, Algorithm::MeanShift];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Canopy => "canopy",
            Algorithm::Dirichlet => "dirichlet",
            Algorithm::FuzzyKMeans => "fuzzy-kmeans",
            Algorithm::KMeans => "kmeans",
            Algorithm::MeanShift => "meanshift",
            Algorithm::MinHash => "minhash",
        }
    }
}

/// Which of the paper's data sets a run uses (selects tuned parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// 600 × 60 Synthetic Control Chart series (Fig. 6).
    ControlChart,
    /// 1 000 × 2 DisplayClustering samples (Fig. 7).
    Display,
}

/// One suite run's outcome.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// Algorithm that ran.
    pub algorithm: Algorithm,
    /// VM count of the virtual cluster.
    pub cluster_vms: u32,
    /// Clusters found.
    pub clusters_found: usize,
    /// Run statistics (iterations, total time).
    pub stats: MlRunStats,
    /// The model, when the algorithm produces centers (MinHash does not).
    pub model: Option<Clustering>,
}

/// Builds the paper's virtual cluster at `vms` nodes: VMs spread over two
/// physical hosts (cross-domain round robin, the realistic deployment).
pub fn scaled_cluster(vms: u32) -> ClusterSpec {
    ClusterSpec::builder()
        .hosts(2)
        .vms(vms)
        .placement(if vms > 1 { Placement::CrossDomain } else { Placement::SingleDomain })
        .build()
}

/// Runs `algorithm` over `points` on a fresh `vms`-node virtual cluster.
pub fn run_algorithm(
    algorithm: Algorithm,
    dataset: DatasetKind,
    points: Vec<Vec<f64>>,
    vms: u32,
    seed: RootSeed,
) -> SuiteRun {
    let mut ml = MlRuntime::new(scaled_cluster(vms), points, seed);
    let (model, stats) = match algorithm {
        Algorithm::Canopy => {
            let params = match dataset {
                DatasetKind::ControlChart => canopy::CanopyParams::control_chart(),
                DatasetKind::Display => canopy::CanopyParams::display(),
            };
            let (m, s) = canopy::run_mr(&mut ml, params);
            (Some(m), s)
        }
        Algorithm::Dirichlet => {
            let params = dirichlet::DirichletParams { iterations: 5, ..Default::default() };
            let (_, m, s) = dirichlet::run_mr(&mut ml, params, seed.derive("alg"));
            (Some(m), s)
        }
        Algorithm::FuzzyKMeans => {
            let params = fuzzy::FuzzyKMeansParams {
                k: 6,
                max_iters: 8,
                convergence: match dataset {
                    DatasetKind::ControlChart => 1.0,
                    DatasetKind::Display => 0.05,
                },
                ..Default::default()
            };
            let (m, s) = fuzzy::run_mr(&mut ml, params, seed.derive("alg"));
            (Some(m), s)
        }
        Algorithm::KMeans => {
            let params = kmeans::KMeansParams {
                k: 6,
                max_iters: 8,
                convergence: match dataset {
                    DatasetKind::ControlChart => 1.0,
                    DatasetKind::Display => 0.05,
                },
                ..Default::default()
            };
            let (m, s) = kmeans::run_mr(&mut ml, params, seed.derive("alg"));
            (Some(m), s)
        }
        Algorithm::MeanShift => {
            let params = match dataset {
                DatasetKind::ControlChart => meanshift::MeanShiftParams::control_chart(),
                DatasetKind::Display => meanshift::MeanShiftParams::display(),
            };
            let (m, s) = meanshift::run_mr(&mut ml, params);
            (Some(m), s)
        }
        Algorithm::MinHash => {
            let params = minhash::MinHashParams {
                bin_width: match dataset {
                    DatasetKind::ControlChart => 8.0,
                    DatasetKind::Display => 1.0,
                },
                ..Default::default()
            };
            let (clusters, s) = minhash::run_mr(&mut ml, params, seed.derive("alg"));
            let found = clusters.len();
            return SuiteRun {
                algorithm,
                cluster_vms: vms,
                clusters_found: found,
                stats: s,
                model: None,
            };
        }
    };
    let clusters_found = model.as_ref().map_or(0, Clustering::k);
    SuiteRun { algorithm, cluster_vms: vms, clusters_found, stats, model }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn all_six_run_on_display_data() {
        let d = datasets::gaussian_mixture(RootSeed(30), 1);
        for alg in Algorithm::ALL {
            let run = run_algorithm(alg, DatasetKind::Display, d.points.clone(), 4, RootSeed(30));
            assert!(run.stats.elapsed_s > 0.0, "{} took no time", alg.name());
            assert!(run.clusters_found > 0, "{} found nothing", alg.name());
        }
    }

    #[test]
    fn fig6_algorithms_slow_down_with_scale() {
        // The headline Fig. 6 shape at reduced size: fixed small data set,
        // growing virtual cluster → growing runtime.
        let d = datasets::control_chart(RootSeed(31), 20, 60); // 120 × 60
        let t = |vms: u32| {
            run_algorithm(
                Algorithm::Canopy,
                DatasetKind::ControlChart,
                d.points.clone(),
                vms,
                RootSeed(31),
            )
            .stats
            .elapsed_s
        };
        let (t2, t8) = (t(2), t(8));
        assert!(t8 > t2, "canopy on 8 VMs ({t8:.2}s) slower than on 2 VMs ({t2:.2}s)");
    }
}
