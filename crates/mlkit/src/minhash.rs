//! MinHash clustering — "probabilistic dimension reduction of high
//! dimensional data ... hash each item using multiple independent hash
//! functions such that the probability of collision of similar items is
//! higher" (Mahout `MinHashDriver`).
//!
//! Vectors are discretized into feature sets; `num_hashes` universal hash
//! functions produce a signature whose banded groups become shuffle keys.
//! Items that share a band signature land in the same reducer group —
//! a candidate cluster. A single MapReduce pass.

use crate::mlrt::{MlRunStats, MlRuntime};
use mapreduce::prelude::*;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simcore::rng::RootSeed;
use std::collections::BTreeSet;

/// A large Mersenne prime for universal hashing.
const P: u64 = (1 << 61) - 1;

/// MinHash parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinHashParams {
    /// Total hash functions.
    pub num_hashes: usize,
    /// Rows per band (hashes grouped per shuffle key).
    pub rows_per_band: usize,
    /// Minimum group size to report as a cluster.
    pub min_cluster_size: usize,
    /// Bin width for discretizing vector coordinates into set elements.
    pub bin_width: f64,
}

impl Default for MinHashParams {
    fn default() -> Self {
        MinHashParams { num_hashes: 20, rows_per_band: 2, min_cluster_size: 2, bin_width: 1.0 }
    }
}

/// The family of seeded universal hash functions `h(x) = (a·x + b) mod p`.
#[derive(Debug, Clone)]
pub struct HashFamily {
    coeffs: Vec<(u64, u64)>,
}

impl HashFamily {
    /// `n` functions derived from `seed`.
    pub fn new(n: usize, seed: RootSeed) -> Self {
        let mut rng = seed.stream("minhash-family");
        let coeffs = (0..n).map(|_| (rng.gen_range(1..P), rng.gen_range(0..P))).collect();
        HashFamily { coeffs }
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// True when the family is empty.
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// MinHash signature of a feature set.
    pub fn signature(&self, set: &BTreeSet<u64>) -> Vec<u64> {
        self.coeffs
            .iter()
            .map(|&(a, b)| {
                set.iter()
                    .map(|&x| {
                        ((u128::from(a) * u128::from(x) + u128::from(b)) % u128::from(P)) as u64
                    })
                    .min()
                    .unwrap_or(u64::MAX)
            })
            .collect()
    }
}

/// Discretizes a vector into a feature set: element `d · 2⁲⁰ + bin(x_d)`.
pub fn vector_to_set(v: &[f64], bin_width: f64) -> BTreeSet<u64> {
    v.iter()
        .enumerate()
        .map(|(d, &x)| {
            let bin = (x / bin_width).floor() as i64;
            ((d as u64) << 20) ^ (bin as u64 & 0xF_FFFF)
        })
        .collect()
}

/// Jaccard similarity of two sets.
pub fn jaccard(a: &BTreeSet<u64>, b: &BTreeSet<u64>) -> f64 {
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    if union == 0.0 {
        1.0
    } else {
        inter / union
    }
}

/// In-memory reference: banded LSH grouping. Returns clusters as sorted
/// id lists (size ≥ `min_cluster_size`), deduplicated.
pub fn reference(points: &[Vec<f64>], params: MinHashParams, seed: RootSeed) -> Vec<Vec<usize>> {
    let family = HashFamily::new(params.num_hashes, seed);
    let bands = params.num_hashes / params.rows_per_band;
    let mut groups: std::collections::HashMap<(usize, Vec<u64>), Vec<usize>> =
        std::collections::HashMap::new();
    for (i, p) in points.iter().enumerate() {
        let set = vector_to_set(p, params.bin_width);
        let sig = family.signature(&set);
        for band in 0..bands {
            let lo = band * params.rows_per_band;
            let key = sig[lo..lo + params.rows_per_band].to_vec();
            groups.entry((band, key)).or_default().push(i);
        }
    }
    let mut clusters: Vec<Vec<usize>> = groups
        .into_values()
        .filter(|g| g.len() >= params.min_cluster_size)
        .map(|mut g| {
            g.sort_unstable();
            g
        })
        .collect();
    clusters.sort();
    clusters.dedup();
    clusters
}

/// The MinHash MapReduce pass.
#[derive(Debug, Clone)]
pub struct MinHashPass {
    /// Parameters.
    pub params: MinHashParams,
    /// Seed for the hash family.
    pub seed: RootSeed,
}

impl MapReduceApp for MinHashPass {
    fn name(&self) -> &str {
        "minhash"
    }

    fn map(&self, k: &K, v: &V, out: &mut dyn FnMut(K, V)) {
        let family = HashFamily::new(self.params.num_hashes, self.seed);
        let set = vector_to_set(v.as_vector(), self.params.bin_width);
        let sig = family.signature(&set);
        let bands = self.params.num_hashes / self.params.rows_per_band;
        for band in 0..bands {
            let lo = band * self.params.rows_per_band;
            let mut key = Vec::with_capacity(8 + self.params.rows_per_band * 8);
            key.extend_from_slice(&(band as u64).to_be_bytes());
            for h in &sig[lo..lo + self.params.rows_per_band] {
                key.extend_from_slice(&h.to_be_bytes());
            }
            out(K::Bytes(key), V::Int(k.as_int()));
        }
    }

    fn reduce(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V)) {
        if values.len() >= self.params.min_cluster_size {
            let mut ids: Vec<i64> = values.iter().map(V::as_int).collect();
            ids.sort_unstable();
            out(key.clone(), V::Tuple(ids.into_iter().map(V::Int).collect()));
        }
    }
}

/// Runs MinHash clustering as one MapReduce pass; returns clusters as
/// sorted id lists plus run statistics.
pub fn run_mr(
    ml: &mut MlRuntime,
    params: MinHashParams,
    seed: RootSeed,
) -> (Vec<Vec<usize>>, MlRunStats) {
    let result = ml.run_pass(
        "minhash",
        Box::new(MinHashPass { params, seed }),
        JobConfig::default().with_reduces(1).with_combiner(false),
    );
    let mut clusters: Vec<Vec<usize>> = result
        .outputs
        .iter()
        .map(|(_, v)| v.as_tuple().iter().map(|id| id.as_int() as usize).collect())
        .collect();
    clusters.sort();
    clusters.dedup();
    let stats = MlRunStats {
        iterations: 1,
        elapsed_s: result.elapsed_secs(),
        per_pass_s: vec![result.elapsed_secs()],
    };
    (clusters, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_collision_rate_approximates_jaccard() {
        // Two sets with known overlap; P(minhash collision) = Jaccard.
        let a: BTreeSet<u64> = (0..60).collect();
        let b: BTreeSet<u64> = (30..90).collect(); // Jaccard = 30/90 = 1/3
        let family = HashFamily::new(600, RootSeed(21));
        let sa = family.signature(&a);
        let sb = family.signature(&b);
        let hits = sa.iter().zip(&sb).filter(|(x, y)| x == y).count() as f64;
        let rate = hits / family.len() as f64;
        let j = jaccard(&a, &b);
        assert!((rate - j).abs() < 0.08, "collision rate {rate:.3} ≈ Jaccard {j:.3}");
    }

    #[test]
    fn identical_points_always_cluster() {
        let pts = vec![vec![1.0, 2.0], vec![1.0, 2.0], vec![50.0, 50.0]];
        let clusters = reference(&pts, MinHashParams::default(), RootSeed(22));
        assert!(
            clusters.iter().any(|c| c.contains(&0) && c.contains(&1)),
            "identical points share every band"
        );
        assert!(
            !clusters.iter().any(|c| c.contains(&0) && c.contains(&2)),
            "distant points never collide on all rows"
        );
    }

    #[test]
    fn mr_matches_reference() {
        use vcluster::spec::{ClusterSpec, Placement};
        let pts = crate::datasets::gaussian_mixture(RootSeed(23), 1).points;
        let spec =
            ClusterSpec::builder().hosts(2).vms(4).placement(Placement::SingleDomain).build();
        let mut ml = crate::mlrt::MlRuntime::new(spec, pts.clone(), RootSeed(23));
        let params = MinHashParams::default();
        let (mr_clusters, stats) = run_mr(&mut ml, params, RootSeed(24));
        let ref_clusters = reference(&pts, params, RootSeed(24));
        assert_eq!(mr_clusters, ref_clusters);
        assert_eq!(stats.iterations, 1);
        assert!(!mr_clusters.is_empty(), "the tight Gaussian must produce collisions");
    }

    #[test]
    fn bin_width_controls_sensitivity() {
        let pts = [vec![0.0, 0.0], vec![0.4, 0.4], vec![9.0, 9.0]];
        // Coarse bins: the two nearby points share all features.
        let coarse = vector_to_set(&pts[0], 1.0);
        let coarse2 = vector_to_set(&pts[1], 1.0);
        assert_eq!(jaccard(&coarse, &coarse2), 1.0);
        // Fine bins separate them.
        let fine = vector_to_set(&pts[0], 0.1);
        let fine2 = vector_to_set(&pts[1], 0.1);
        assert!(jaccard(&fine, &fine2) < 0.5);
    }
}
