//! Canopy clustering — "a very simple, fast and accurate method for
//! grouping objects", often the initial step before k-means (Mahout
//! `CanopyDriver`).
//!
//! Two thresholds `T1 > T2`: walking the points, a point farther than `T2`
//! from every existing canopy founds a new one. The MR form is Mahout's:
//! each mapper builds canopies over its split and emits the local centers;
//! a single reducer runs the same algorithm over all mapper centers to
//! produce the global canopies.

use crate::mlrt::{Clustering, MlRunStats, MlRuntime};
use crate::vector::{weighted_mean, Distance};
use mapreduce::prelude::*;
use serde::{Deserialize, Serialize};

/// Canopy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CanopyParams {
    /// Loose threshold (membership radius); must exceed `t2`.
    pub t1: f64,
    /// Tight threshold (new-canopy radius).
    pub t2: f64,
    /// Distance measure.
    pub distance: Distance,
}

impl CanopyParams {
    /// Parameters suited to the Synthetic Control Chart set.
    pub fn control_chart() -> Self {
        CanopyParams { t1: 80.0, t2: 55.0, distance: Distance::Euclidean }
    }

    /// Parameters suited to the DisplayClustering 2-D samples.
    pub fn display() -> Self {
        CanopyParams { t1: 3.0, t2: 1.5, distance: Distance::Euclidean }
    }
}

/// Builds canopies over `points`: returns `(center, member_count)` pairs.
/// The center is the running mean of the points that founded/strongly
/// joined the canopy (within `t2`).
pub fn build_canopies(points: &[Vec<f64>], params: CanopyParams) -> Vec<(Vec<f64>, f64)> {
    assert!(params.t1 > params.t2, "T1 must exceed T2");
    let mut canopies: Vec<(Vec<f64>, f64)> = Vec::new();
    for p in points {
        let mut strongly_bound = false;
        for (center, mass) in canopies.iter_mut() {
            let d = params.distance.between(p, center);
            if d < params.t2 {
                // Strongly bound: absorb into the canopy's running mean.
                let new_mass = *mass + 1.0;
                for (c, &x) in center.iter_mut().zip(p) {
                    *c += (x - *c) / new_mass;
                }
                *mass = new_mass;
                strongly_bound = true;
                break;
            }
        }
        if !strongly_bound {
            canopies.push((p.clone(), 1.0));
        }
    }
    canopies
}

/// In-memory reference: canopies plus nearest-canopy assignments.
pub fn reference(points: &[Vec<f64>], params: CanopyParams) -> Clustering {
    let canopies = build_canopies(points, params);
    let centers: Vec<Vec<f64>> = canopies.into_iter().map(|(c, _)| c).collect();
    let assignments =
        points.iter().map(|p| crate::vector::nearest(p, &centers, params.distance).0).collect();
    Clustering { centers, assignments }
}

/// The canopy MapReduce pass.
#[derive(Debug, Clone)]
pub struct CanopyPass {
    /// Algorithm parameters.
    pub params: CanopyParams,
}

impl MapReduceApp for CanopyPass {
    fn name(&self) -> &str {
        "canopy"
    }

    /// Mahout's canopy mapper is stateful over its whole split; our map
    /// interface is per-record, so the mapper emits each point keyed to a
    /// single group and the combiner (which sees the whole split's
    /// partition) builds the local canopies. This matches Mahout's
    /// map-side canopy generation in both communication volume and result.
    fn map(&self, _k: &K, v: &V, out: &mut dyn FnMut(K, V)) {
        out(
            K::Text("centroid".into()),
            V::Tuple(vec![V::Vector(v.as_vector().to_vec()), V::Float(1.0)]),
        );
    }

    fn combine(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V)) -> bool {
        let pts: Vec<Vec<f64>> =
            values.iter().map(|v| v.as_tuple()[0].as_vector().to_vec()).collect();
        for (center, mass) in build_canopies(&pts, self.params) {
            out(key.clone(), V::Tuple(vec![V::Vector(center), V::Float(mass)]));
        }
        true
    }

    fn reduce(&self, _key: &K, values: &[V], out: &mut dyn FnMut(K, V)) {
        // Cluster the mapper-local canopy centers, weighting by mass.
        let weighted: Vec<(Vec<f64>, f64)> = values
            .iter()
            .map(|v| {
                let t = v.as_tuple();
                (t[0].as_vector().to_vec(), t[1].as_float())
            })
            .collect();
        let centers_only: Vec<Vec<f64>> = weighted.iter().map(|(c, _)| c.clone()).collect();
        let global = build_canopies(&centers_only, self.params);
        // Refine each global canopy center as the mass-weighted mean of
        // the local canopies it captured.
        for (i, (gc, _)) in global.iter().enumerate() {
            let members: Vec<(&[f64], f64)> = weighted
                .iter()
                .filter(|(c, _)| self.params.distance.between(c, gc) < self.params.t1)
                .map(|(c, m)| (c.as_slice(), *m))
                .collect();
            let center = if members.is_empty() { gc.clone() } else { weighted_mean(members) };
            out(K::Int(i as i64), V::Vector(center));
        }
    }
}

/// Runs canopy as one MapReduce pass plus an assignment pass.
pub fn run_mr(ml: &mut MlRuntime, params: CanopyParams) -> (Clustering, MlRunStats) {
    let result = ml.run_pass(
        "canopy",
        Box::new(CanopyPass { params }),
        JobConfig::default().with_reduces(1),
    );
    let centers: Vec<Vec<f64>> =
        result.outputs.iter().map(|(_, v)| v.as_vector().to_vec()).collect();
    let assignments = ml.assign(&centers, params.distance);
    let stats = MlRunStats {
        iterations: 1,
        elapsed_s: result.elapsed_secs(),
        per_pass_s: vec![result.elapsed_secs()],
    };
    (Clustering { centers, assignments }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::gaussian_mixture;
    use simcore::rng::RootSeed;

    #[test]
    fn separated_blobs_get_separate_canopies() {
        let mut pts = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (20.0, 20.0), (-20.0, 20.0)] {
            for i in 0..10 {
                pts.push(vec![cx + (i as f64) * 0.05, cy]);
            }
        }
        let params = CanopyParams { t1: 6.0, t2: 3.0, distance: Distance::Euclidean };
        let model = reference(&pts, params);
        assert_eq!(model.k(), 3, "three separated blobs, three canopies");
    }

    #[test]
    fn t2_controls_canopy_count() {
        let pts = gaussian_mixture(RootSeed(1), 1).points;
        let tight =
            build_canopies(&pts, CanopyParams { t1: 1.0, t2: 0.3, distance: Distance::Euclidean });
        let loose =
            build_canopies(&pts, CanopyParams { t1: 6.0, t2: 3.0, distance: Distance::Euclidean });
        assert!(tight.len() > loose.len(), "tighter T2 makes more canopies");
    }

    #[test]
    fn masses_sum_to_point_count() {
        let pts = gaussian_mixture(RootSeed(2), 1).points;
        let canopies = build_canopies(&pts, CanopyParams::display());
        let total: f64 = canopies.iter().map(|(_, m)| m).sum();
        assert_eq!(total as usize, pts.len());
    }

    #[test]
    #[should_panic(expected = "T1 must exceed T2")]
    fn rejects_inverted_thresholds() {
        build_canopies(
            &[vec![0.0]],
            CanopyParams { t1: 1.0, t2: 2.0, distance: Distance::Euclidean },
        );
    }

    #[test]
    fn mr_form_finds_similar_structure() {
        use vcluster::spec::{ClusterSpec, Placement};
        let pts = gaussian_mixture(RootSeed(3), 1).points;
        let spec =
            ClusterSpec::builder().hosts(2).vms(6).placement(Placement::SingleDomain).build();
        let mut ml = crate::mlrt::MlRuntime::new(spec, pts.clone(), RootSeed(3));
        let (model, stats) = run_mr(&mut ml, CanopyParams::display());
        assert!(model.k() >= 2, "at least the wide/tight structure found");
        assert!(model.k() < 100, "not degenerate (canopy per point), got {}", model.k());
        assert_eq!(model.assignments.len(), pts.len());
        assert_eq!(stats.iterations, 1);
    }
}
