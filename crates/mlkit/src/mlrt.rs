//! Runs iterative ML algorithms as MapReduce job sequences — the Machine
//! Learning Algorithm Library side of the vHadoop platform.
//!
//! [`MlRuntime`] registers the point set as an HDFS file split into one
//! block per worker (so every TaskTracker gets a map task, Mahout's
//! recommended layout) and re-runs a job per iteration, exactly like
//! Mahout's iterative drivers re-scan the input each pass.

use crate::vector::{nearest, Distance};
use mapreduce::prelude::*;
use simcore::rng::RootSeed;
use std::sync::Arc;
use vcluster::spec::ClusterSpec;
use vhdfs::hdfs::HdfsConfig;

/// A clustering model: centers plus (optionally) per-point assignments.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster centers.
    pub centers: Vec<Vec<f64>>,
    /// Cluster index per input point (empty until an assignment pass runs).
    pub assignments: Vec<usize>,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centers.len()
    }
}

/// Timing of an MR algorithm run (the paper's Fig. 6/7 metric).
#[derive(Debug, Clone, PartialEq)]
pub struct MlRunStats {
    /// MapReduce passes executed.
    pub iterations: u32,
    /// Total wall time over all passes, seconds.
    pub elapsed_s: f64,
    /// Per-pass wall times, seconds.
    pub per_pass_s: Vec<f64>,
}

/// The ML-on-MapReduce runtime: a simulated cluster with the point set
/// loaded into HDFS.
#[derive(Debug)]
pub struct MlRuntime {
    /// The underlying MapReduce runtime.
    pub rt: MrRuntime,
    points: Arc<Vec<Vec<f64>>>,
    chunks: Vec<Vec<Record>>,
    path: String,
    passes: u32,
}

/// Serialized size of one point record (mirrors `types::records_size`).
fn point_bytes(dims: usize) -> u64 {
    8 + (dims as u64 * 8 + 4)
}

/// Smallest useful input split: Hadoop will not split below this, so a
/// tiny data set gets few maps no matter how many workers exist — the
/// mechanism behind Fig. 7's flat curves vs. Fig. 6's growth.
pub const MIN_SPLIT_BYTES: u64 = 16 * 1024;

impl MlRuntime {
    /// Boots a cluster and loads `points` as `/ml/data`, split into one
    /// HDFS block per datanode — but never below [`MIN_SPLIT_BYTES`] per
    /// split, so small data sets keep few maps.
    pub fn new(cluster_spec: ClusterSpec, points: Vec<Vec<f64>>, seed: RootSeed) -> Self {
        Self::with_min_split(cluster_spec, points, seed, MIN_SPLIT_BYTES)
    }

    /// [`MlRuntime::new`] with an explicit minimum split size.
    pub fn with_min_split(
        cluster_spec: ClusterSpec,
        points: Vec<Vec<f64>>,
        seed: RootSeed,
        min_split: u64,
    ) -> Self {
        assert!(!points.is_empty(), "empty dataset");
        let datanodes = (cluster_spec.vms - 1).max(1) as usize;
        let size_cap = (point_bytes(points[0].len()) * points.len() as u64)
            .div_ceil(min_split.max(1)) as usize;
        let splits = datanodes.min(points.len()).min(size_cap.max(1));
        let dims = points[0].len();
        let total_bytes = point_bytes(dims) * points.len() as u64;
        let block_size = total_bytes.div_ceil(splits as u64).max(1);
        let hdfs_cfg = HdfsConfig { block_size, replication: 3 };
        let mut rt = MrRuntime::new(cluster_spec, hdfs_cfg, seed);
        rt.register_input("/ml/data", total_bytes, VmId(1));
        let blocks = rt.hdfs.stat("/ml/data").expect("registered").blocks.len();

        // Contiguous chunks, one per HDFS block.
        let points = Arc::new(points);
        let per = points.len().div_ceil(blocks);
        let chunks: Vec<Vec<Record>> = (0..blocks)
            .map(|b| {
                let lo = b * per;
                let hi = ((b + 1) * per).min(points.len());
                (lo..hi).map(|i| (K::Int(i as i64), V::Vector(points[i].clone()))).collect()
            })
            .collect();
        MlRuntime { rt, points, chunks, path: "/ml/data".to_string(), passes: 0 }
    }

    /// The loaded points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// Number of map splits per pass.
    pub fn splits(&self) -> usize {
        self.chunks.len()
    }

    /// Runs one MapReduce pass of `app` over the point set.
    pub fn run_pass(
        &mut self,
        name: &str,
        app: Box<dyn MapReduceApp>,
        config: JobConfig,
    ) -> JobResult {
        self.passes += 1;
        let out = format!("/ml/out/{name}-{:04}", self.passes);
        let spec = JobSpec::new(name, &self.path, out).with_config(config);
        let input = VecInput::new(self.chunks.clone());
        self.rt.run_job(spec, app, Box::new(input))
    }

    /// Runs the generic nearest-center assignment pass, returning the
    /// cluster index per point.
    pub fn assign(&mut self, centers: &[Vec<f64>], distance: Distance) -> Vec<usize> {
        let app = AssignApp { centers: centers.to_vec(), distance };
        let result = self.run_pass(
            "assign",
            Box::new(app),
            JobConfig::default().with_reduces(1).with_combiner(false),
        );
        let mut assignments = vec![0usize; self.points.len()];
        for (k, v) in &result.outputs {
            assignments[k.as_int() as usize] = v.as_int() as usize;
        }
        assignments
    }

    /// Total passes run so far.
    pub fn passes(&self) -> u32 {
        self.passes
    }
}

/// Generic cluster-assignment job: `point → (point_id, nearest center)`.
#[derive(Debug, Clone)]
pub struct AssignApp {
    /// Model centers.
    pub centers: Vec<Vec<f64>>,
    /// Distance measure.
    pub distance: Distance,
}

impl MapReduceApp for AssignApp {
    fn name(&self) -> &str {
        "assign"
    }
    fn map(&self, k: &K, v: &V, out: &mut dyn FnMut(K, V)) {
        let (c, _) = nearest(v.as_vector(), &self.centers, self.distance);
        out(k.clone(), V::Int(c as i64));
    }
    fn reduce(&self, k: &K, vs: &[V], out: &mut dyn FnMut(K, V)) {
        out(k.clone(), vs[0].clone());
    }
}

/// Sums `(Σx, Σw)` tuples — the shared combiner/reducer shape of the
/// centroid-style algorithms (k-means, fuzzy k-means, mean shift).
pub fn sum_weighted_tuples(values: &[V]) -> (Vec<f64>, f64) {
    let mut sum: Option<Vec<f64>> = None;
    let mut weight = 0.0;
    for v in values {
        let t = v.as_tuple();
        let x = t[0].as_vector();
        weight += t[1].as_float();
        match &mut sum {
            Some(s) => crate::vector::add_assign(s, x),
            None => sum = Some(x.to_vec()),
        }
    }
    (sum.expect("at least one value"), weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::gaussian_mixture;
    use vcluster::spec::Placement;

    fn cluster(vms: u32) -> ClusterSpec {
        ClusterSpec::builder().hosts(2).vms(vms).placement(Placement::CrossDomain).build()
    }

    #[test]
    fn splits_scale_with_datanodes_for_big_data() {
        // A data set well above the minimum split size splits per worker.
        let d = crate::datasets::control_chart(RootSeed(1), 100, 60);
        let ml4 = MlRuntime::new(cluster(4), d.points.clone(), RootSeed(1));
        let ml8 = MlRuntime::new(cluster(8), d.points.clone(), RootSeed(1));
        assert!(ml4.splits() <= 3);
        assert!(ml8.splits() > ml4.splits());
    }

    #[test]
    fn tiny_datasets_keep_few_splits() {
        // The 28 KB DisplayClustering set stays at 1–2 splits regardless
        // of cluster size (Fig. 7's flatness mechanism).
        let d = gaussian_mixture(RootSeed(1), 1);
        let ml8 = MlRuntime::new(cluster(8), d.points, RootSeed(1));
        assert!(ml8.splits() <= 2, "got {} splits", ml8.splits());
    }

    #[test]
    fn assign_pass_labels_every_point() {
        let d = gaussian_mixture(RootSeed(2), 1);
        let n = d.points.len();
        let mut ml = MlRuntime::new(cluster(4), d.points, RootSeed(2));
        let centers = vec![vec![1.0, 1.0], vec![0.0, 2.0]];
        let a = ml.assign(&centers, Distance::Euclidean);
        assert_eq!(a.len(), n);
        assert!(a.contains(&0) && a.contains(&1));
    }

    #[test]
    fn sum_weighted_tuples_sums() {
        let vs = vec![
            V::Tuple(vec![V::Vector(vec![1.0, 2.0]), V::Float(1.0)]),
            V::Tuple(vec![V::Vector(vec![3.0, 4.0]), V::Float(2.0)]),
        ];
        let (sum, w) = sum_weighted_tuples(&vs);
        assert_eq!(sum, vec![4.0, 6.0]);
        assert_eq!(w, 3.0);
    }
}
