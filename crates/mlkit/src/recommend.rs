//! Item-based collaborative filtering — the "recommendations" member of
//! the paper's Machine Learning Algorithm Library (Mahout's
//! `ItemSimilarityJob` / item-based recommender).
//!
//! Two MapReduce passes over a `(user, item, rating)` matrix:
//! 1. **co-occurrence**: mappers group ratings by user and emit item-pair
//!    co-occurrence counts; the reducer sums them into the item-item
//!    similarity matrix;
//! 2. recommendation itself is a cheap model lookup (top-N unrated items
//!    weighted by similarity to the user's rated items).

use crate::mlrt::MlRunStats;
use mapreduce::prelude::*;
use serde::{Deserialize, Serialize};
use simcore::rng::RootSeed;
use std::collections::HashMap;
use vcluster::spec::ClusterSpec;
use vhdfs::hdfs::HdfsConfig;

/// One rating event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rating {
    /// User id.
    pub user: u32,
    /// Item id.
    pub item: u32,
    /// Preference strength (1.0 for boolean data).
    pub value: f64,
}

/// The item-item co-occurrence model.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ItemSimilarity {
    /// `(item_a, item_b) -> co-occurrence weight`, stored with `a < b`.
    pub pairs: HashMap<(u32, u32), f64>,
}

impl ItemSimilarity {
    /// Similarity of two items (symmetric, 0 when never co-rated).
    pub fn get(&self, a: u32, b: u32) -> f64 {
        let key = if a < b { (a, b) } else { (b, a) };
        self.pairs.get(&key).copied().unwrap_or(0.0)
    }

    /// Top-`n` recommendations for `user` given the full rating set.
    pub fn recommend(&self, ratings: &[Rating], user: u32, n: usize) -> Vec<(u32, f64)> {
        let mine: Vec<&Rating> = ratings.iter().filter(|r| r.user == user).collect();
        let rated: Vec<u32> = mine.iter().map(|r| r.item).collect();
        let mut scores: HashMap<u32, f64> = HashMap::new();
        for r in ratings {
            if rated.contains(&r.item) {
                continue;
            }
            let score: f64 = mine.iter().map(|m| self.get(m.item, r.item) * m.value).sum();
            if score > 0.0 {
                scores.insert(r.item, score);
            }
        }
        let mut out: Vec<(u32, f64)> = scores.into_iter().collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
        out.truncate(n);
        out
    }
}

/// In-memory reference: exact co-occurrence counting.
pub fn cooccurrence(ratings: &[Rating]) -> ItemSimilarity {
    let mut by_user: HashMap<u32, Vec<(u32, f64)>> = HashMap::new();
    for r in ratings {
        by_user.entry(r.user).or_default().push((r.item, r.value));
    }
    let mut model = ItemSimilarity::default();
    for items in by_user.values() {
        for (i, &(a, va)) in items.iter().enumerate() {
            for &(b, vb) in &items[i + 1..] {
                if a == b {
                    continue;
                }
                let key = if a < b { (a, b) } else { (b, a) };
                *model.pairs.entry(key).or_insert(0.0) += va * vb;
            }
        }
    }
    model
}

/// The co-occurrence MapReduce pass. Input records are
/// `(user, Tuple[Int item, Float value])` *grouped per user per split* —
/// the mapper therefore needs the whole user vector, which the driver
/// guarantees by sharding on user id.
#[derive(Debug, Clone, Copy, Default)]
pub struct CooccurrencePass;

impl MapReduceApp for CooccurrencePass {
    fn name(&self) -> &str {
        "item-cooccurrence"
    }

    /// `v` is the user's full rating vector: Tuple of Tuple[item, value].
    fn map(&self, _k: &K, v: &V, out: &mut dyn FnMut(K, V)) {
        let items: Vec<(u32, f64)> = v
            .as_tuple()
            .iter()
            .map(|t| {
                let p = t.as_tuple();
                (p[0].as_int() as u32, p[1].as_float())
            })
            .collect();
        for (i, &(a, va)) in items.iter().enumerate() {
            for &(b, vb) in &items[i + 1..] {
                if a == b {
                    continue;
                }
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                out(K::Int((i64::from(lo) << 32) | i64::from(hi)), V::Float(va * vb));
            }
        }
    }

    fn combine(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V)) -> bool {
        out(key.clone(), V::Float(values.iter().map(V::as_float).sum()));
        true
    }

    fn reduce(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V)) {
        out(key.clone(), V::Float(values.iter().map(V::as_float).sum()));
    }
}

/// Runs the co-occurrence job on a fresh virtual cluster, returning the
/// model and run statistics.
pub fn cooccurrence_mr(
    cluster_spec: ClusterSpec,
    ratings: &[Rating],
    seed: RootSeed,
) -> (ItemSimilarity, MlRunStats) {
    // Group ratings per user; shard users over splits.
    let mut by_user: HashMap<u32, Vec<(u32, f64)>> = HashMap::new();
    for r in ratings {
        by_user.entry(r.user).or_default().push((r.item, r.value));
    }
    let mut users: Vec<u32> = by_user.keys().copied().collect();
    users.sort_unstable();
    let records: Vec<Record> = users
        .iter()
        .map(|&u| {
            let items = &by_user[&u];
            (
                K::Int(i64::from(u)),
                V::Tuple(
                    items
                        .iter()
                        .map(|&(i, v)| V::Tuple(vec![V::Int(i64::from(i)), V::Float(v)]))
                        .collect(),
                ),
            )
        })
        .collect();

    let datanodes = (cluster_spec.vms - 1).max(1) as usize;
    let splits = datanodes.min(records.len().max(1));
    let bytes = mapreduce::types::records_size(&records);
    let mut rt = MrRuntime::new(
        cluster_spec,
        HdfsConfig { block_size: bytes.div_ceil(splits as u64).max(1), replication: 3 },
        seed,
    );
    rt.register_input("/recsys/ratings", bytes, VmId(1));
    let blocks = rt.hdfs.stat("/recsys/ratings").expect("registered").blocks.len();
    let input = VecInput::sharded(records, blocks);
    let spec = JobSpec::new("item-cooccurrence", "/recsys/ratings", "/recsys/similarity")
        .with_config(JobConfig::default().with_reduces(1));
    let result = rt.run_job(spec, Box::new(CooccurrencePass), Box::new(input));

    let mut model = ItemSimilarity::default();
    for (k, v) in &result.outputs {
        let key = k.as_int();
        let pair = ((key >> 32) as u32, (key & 0xFFFF_FFFF) as u32);
        *model.pairs.entry(pair).or_insert(0.0) += v.as_float();
    }
    let stats = MlRunStats {
        iterations: 1,
        elapsed_s: result.elapsed_secs(),
        per_pass_s: vec![result.elapsed_secs()],
    };
    (model, stats)
}

/// Synthesizes a boolean rating set with planted taste groups: users in
/// group g rate items `[g·10, g·10+10)` heavily plus random noise.
pub fn synthetic_ratings(seed: RootSeed, users: u32, groups: u32) -> Vec<Rating> {
    use rand::Rng;
    let mut rng = seed.stream("ratings");
    let mut out = Vec::new();
    for user in 0..users {
        let group = user % groups;
        let base = group * 10;
        for _ in 0..6 {
            out.push(Rating { user, item: base + rng.gen_range(0..10), value: 1.0 });
        }
        // Cross-group noise.
        out.push(Rating { user, item: rng.gen_range(0..groups * 10), value: 1.0 });
    }
    out.sort_by_key(|r| (r.user, r.item));
    out.dedup_by_key(|r| (r.user, r.item));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcluster::spec::Placement;

    #[test]
    fn cooccurrence_counts_pairs() {
        let ratings = vec![
            Rating { user: 1, item: 10, value: 1.0 },
            Rating { user: 1, item: 20, value: 1.0 },
            Rating { user: 2, item: 10, value: 1.0 },
            Rating { user: 2, item: 20, value: 1.0 },
            Rating { user: 2, item: 30, value: 1.0 },
        ];
        let model = cooccurrence(&ratings);
        assert_eq!(model.get(10, 20), 2.0, "co-rated by both users");
        assert_eq!(model.get(10, 30), 1.0);
        assert_eq!(model.get(20, 10), 2.0, "symmetric");
        assert_eq!(model.get(10, 99), 0.0);
    }

    #[test]
    fn recommendations_stay_in_taste_group() {
        let ratings = synthetic_ratings(RootSeed(50), 60, 3);
        let model = cooccurrence(&ratings);
        // User 0 is in group 0 (items 0..10).
        let recs = model.recommend(&ratings, 0, 3);
        assert!(!recs.is_empty(), "something recommended");
        for (item, _) in &recs {
            assert!(*item < 10, "recommended {item} outside user 0's taste group");
        }
    }

    #[test]
    fn recommend_excludes_rated_items() {
        let ratings = synthetic_ratings(RootSeed(51), 30, 3);
        let model = cooccurrence(&ratings);
        let rated: Vec<u32> = ratings.iter().filter(|r| r.user == 5).map(|r| r.item).collect();
        for (item, _) in model.recommend(&ratings, 5, 10) {
            assert!(!rated.contains(&item), "recommended an already-rated item");
        }
    }

    #[test]
    fn mr_matches_reference() {
        let ratings = synthetic_ratings(RootSeed(52), 40, 4);
        let reference = cooccurrence(&ratings);
        let spec = ClusterSpec::builder().hosts(2).vms(6).placement(Placement::CrossDomain).build();
        let (mr_model, stats) = cooccurrence_mr(spec, &ratings, RootSeed(53));
        assert_eq!(mr_model.pairs.len(), reference.pairs.len());
        for (k, v) in &reference.pairs {
            assert!(
                (mr_model.pairs[k] - v).abs() < 1e-9,
                "pair {k:?} diverged: {} vs {v}",
                mr_model.pairs[k]
            );
        }
        assert!(stats.elapsed_s > 0.0);
    }
}
