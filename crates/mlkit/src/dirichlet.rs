//! Dirichlet process clustering — "performs Bayesian mixture modeling"
//! (Mahout `DirichletDriver`).
//!
//! Collapsed-ish Gibbs over a finite approximation of the Dirichlet
//! process: `k0` normal model components with mixture weights drawn from a
//! symmetric Dirichlet(α/k0) prior. Each iteration is one MapReduce pass:
//! the mapper *samples* an assignment for every point from the posterior
//! responsibilities (seeded per point × iteration, so re-runs are exact),
//! emitting sufficient statistics `(Σx, Σx², n)`; the reducer re-estimates
//! each component's mean, (diagonal) deviation, and weight. Components
//! that capture no data shrink toward the prior and die off naturally —
//! the DP's "use as many clusters as the data wants" behaviour.

use crate::mlrt::{Clustering, MlRunStats, MlRuntime};
use crate::vector::Distance;
use mapreduce::prelude::*;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simcore::rng::RootSeed;

/// Dirichlet clustering parameters (Mahout defaults: k0 = 10, α = 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirichletParams {
    /// Components in the finite DP approximation.
    pub k0: usize,
    /// Concentration parameter α.
    pub alpha: f64,
    /// Gibbs iterations (Mahout default 10).
    pub iterations: u32,
    /// Minimum posterior weight for a component to appear in the final
    /// model.
    pub min_weight: f64,
}

impl Default for DirichletParams {
    fn default() -> Self {
        DirichletParams { k0: 10, alpha: 1.0, iterations: 10, min_weight: 0.01 }
    }
}

/// One normal model component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Mean vector.
    pub mean: Vec<f64>,
    /// Per-dimension standard deviation.
    pub std: Vec<f64>,
    /// Mixture weight (sums to 1 over the model).
    pub weight: f64,
    /// Points captured in the last iteration.
    pub count: u64,
}

/// The mixture model carried between iterations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirichletModel {
    /// Model components.
    pub components: Vec<Component>,
}

impl DirichletModel {
    /// Initializes `k0` components spread over sampled points with unit
    /// deviations and uniform weights.
    pub fn init(points: &[Vec<f64>], params: DirichletParams, seed: RootSeed) -> Self {
        let mut rng = seed.stream("dirichlet-init");
        let dims = points[0].len();
        let components = (0..params.k0)
            .map(|_| {
                let p = &points[rng.gen_range(0..points.len())];
                Component {
                    mean: p.clone(),
                    std: vec![initial_std(points, dims); dims],
                    weight: 1.0 / params.k0 as f64,
                    count: 0,
                }
            })
            .collect();
        DirichletModel { components }
    }

    /// Log unnormalized posterior responsibility of `c` for `x`.
    fn log_resp(c: &Component, x: &[f64]) -> f64 {
        let mut lp = c.weight.max(1e-12).ln();
        for (i, &xi) in x.iter().enumerate() {
            let s = c.std[i].max(1e-3);
            let z = (xi - c.mean[i]) / s;
            lp += -0.5 * z * z - s.ln();
        }
        lp
    }

    /// Samples a component index for `x` from the posterior.
    pub fn sample_assignment(&self, x: &[f64], rng: &mut impl Rng) -> usize {
        let lps: Vec<f64> = self.components.iter().map(|c| Self::log_resp(c, x)).collect();
        let max = lps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let ps: Vec<f64> = lps.iter().map(|&lp| (lp - max).exp()).collect();
        let total: f64 = ps.iter().sum();
        let mut u: f64 = rng.gen_range(0.0..total);
        for (i, p) in ps.iter().enumerate() {
            u -= p;
            if u <= 0.0 {
                return i;
            }
        }
        self.components.len() - 1
    }
}

/// Crude global scale estimate for initial deviations.
fn initial_std(points: &[Vec<f64>], dims: usize) -> f64 {
    let n = points.len() as f64;
    let mut mean = vec![0.0; dims];
    for p in points {
        crate::vector::add_assign(&mut mean, p);
    }
    crate::vector::scale(&mut mean, 1.0 / n);
    let var: f64 = points.iter().map(|p| Distance::SquaredEuclidean.between(p, &mean)).sum::<f64>()
        / (n * dims as f64);
    var.sqrt().max(1e-3)
}

/// Per-component sufficient statistics.
#[derive(Debug, Clone, Default)]
struct Suff {
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
    n: u64,
}

/// Posterior re-estimation from sufficient statistics.
fn posterior(
    model: &DirichletModel,
    stats: &[Suff],
    params: DirichletParams,
    total: u64,
) -> DirichletModel {
    let k = model.components.len() as f64;
    let denom = total as f64 + params.alpha;
    let components = model
        .components
        .iter()
        .zip(stats)
        .map(|(old, s)| {
            if s.n == 0 {
                // No data: weight decays to the prior mass.
                Component { weight: params.alpha / k / denom, count: 0, ..old.clone() }
            } else {
                let n = s.n as f64;
                let mean: Vec<f64> = s.sum.iter().map(|&x| x / n).collect();
                let std: Vec<f64> = s
                    .sum_sq
                    .iter()
                    .zip(&mean)
                    .map(|(&xx, &m)| ((xx / n - m * m).max(0.0)).sqrt().max(1e-3))
                    .collect();
                Component { mean, std, weight: (n + params.alpha / k) / denom, count: s.n }
            }
        })
        .collect();
    DirichletModel { components }
}

/// In-memory reference run. Returns the model and the significant
/// clustering (components above `min_weight`).
pub fn reference(
    points: &[Vec<f64>],
    params: DirichletParams,
    seed: RootSeed,
) -> (DirichletModel, Clustering) {
    let mut model = DirichletModel::init(points, params, seed);
    let dims = points[0].len();
    for iter in 0..params.iterations {
        let mut stats: Vec<Suff> = (0..params.k0)
            .map(|_| Suff { sum: vec![0.0; dims], sum_sq: vec![0.0; dims], n: 0 })
            .collect();
        for (i, p) in points.iter().enumerate() {
            let mut rng = seed.stream_at("dirichlet-gibbs", (u64::from(iter) << 32) | i as u64);
            let z = model.sample_assignment(p, &mut rng);
            let s = &mut stats[z];
            for (d, &x) in p.iter().enumerate() {
                s.sum[d] += x;
                s.sum_sq[d] += x * x;
            }
            s.n += 1;
        }
        model = posterior(&model, &stats, params, points.len() as u64);
    }
    let clustering = significant_clustering(&model, points, params);
    (model, clustering)
}

/// Extracts components above the weight floor and hard-assigns points.
pub fn significant_clustering(
    model: &DirichletModel,
    points: &[Vec<f64>],
    params: DirichletParams,
) -> Clustering {
    let centers: Vec<Vec<f64>> = model
        .components
        .iter()
        .filter(|c| c.weight >= params.min_weight && c.count > 0)
        .map(|c| c.mean.clone())
        .collect();
    let centers = if centers.is_empty() { vec![model.components[0].mean.clone()] } else { centers };
    let assignments =
        points.iter().map(|p| crate::vector::nearest(p, &centers, Distance::Euclidean).0).collect();
    Clustering { centers, assignments }
}

/// One Dirichlet MapReduce pass: sample assignments, emit suff-stats.
#[derive(Debug, Clone)]
pub struct DirichletPass {
    /// Current model (broadcast to all mappers).
    pub model: DirichletModel,
    /// Root seed for reproducible Gibbs sampling.
    pub seed: RootSeed,
    /// Iteration number (decorrelates sampling across passes).
    pub iteration: u32,
}

impl MapReduceApp for DirichletPass {
    fn name(&self) -> &str {
        "dirichlet"
    }

    fn map(&self, k: &K, v: &V, out: &mut dyn FnMut(K, V)) {
        let x = v.as_vector();
        let i = k.as_int() as u64;
        let mut rng = self.seed.stream_at("dirichlet-gibbs", (u64::from(self.iteration) << 32) | i);
        let z = self.model.sample_assignment(x, &mut rng);
        let sq: Vec<f64> = x.iter().map(|&a| a * a).collect();
        out(K::Int(z as i64), V::Tuple(vec![V::Vector(x.to_vec()), V::Vector(sq), V::Float(1.0)]));
    }

    fn combine(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V)) -> bool {
        out(key.clone(), sum_suff(values));
        true
    }

    fn reduce(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V)) {
        out(key.clone(), sum_suff(values));
    }
}

/// Sums `(Σx, Σx², n)` tuples.
fn sum_suff(values: &[V]) -> V {
    let mut sum: Option<Vec<f64>> = None;
    let mut sum_sq: Option<Vec<f64>> = None;
    let mut n = 0.0;
    for v in values {
        let t = v.as_tuple();
        let x = t[0].as_vector();
        let xx = t[1].as_vector();
        n += t[2].as_float();
        match (&mut sum, &mut sum_sq) {
            (Some(s), Some(ss)) => {
                crate::vector::add_assign(s, x);
                crate::vector::add_assign(ss, xx);
            }
            _ => {
                sum = Some(x.to_vec());
                sum_sq = Some(xx.to_vec());
            }
        }
    }
    V::Tuple(vec![
        V::Vector(sum.expect("non-empty")),
        V::Vector(sum_sq.expect("non-empty")),
        V::Float(n),
    ])
}

/// Runs Dirichlet clustering as a MapReduce job sequence.
pub fn run_mr(
    ml: &mut MlRuntime,
    params: DirichletParams,
    seed: RootSeed,
) -> (DirichletModel, Clustering, MlRunStats) {
    let mut model = DirichletModel::init(ml.points(), params, seed);
    let dims = ml.points()[0].len();
    let total = ml.points().len() as u64;
    let mut per_pass = Vec::new();
    for iteration in 0..params.iterations {
        let app = DirichletPass { model: model.clone(), seed, iteration };
        let result = ml.run_pass("dirichlet", Box::new(app), JobConfig::default().with_reduces(1));
        per_pass.push(result.elapsed_secs());
        let mut stats: Vec<Suff> = (0..params.k0)
            .map(|_| Suff { sum: vec![0.0; dims], sum_sq: vec![0.0; dims], n: 0 })
            .collect();
        for (k, v) in &result.outputs {
            let z = k.as_int() as usize;
            let t = v.as_tuple();
            stats[z].sum = t[0].as_vector().to_vec();
            stats[z].sum_sq = t[1].as_vector().to_vec();
            stats[z].n = t[2].as_float() as u64;
        }
        model = posterior(&model, &stats, params, total);
    }
    let clustering = significant_clustering(&model, ml.points(), params);
    // Timed hard-assignment pass for parity with the other algorithms.
    let assignments = ml.assign(&clustering.centers, Distance::Euclidean);
    let elapsed_s = per_pass.iter().sum();
    let stats = MlRunStats { iterations: params.iterations, elapsed_s, per_pass_s: per_pass };
    (model, Clustering { assignments, ..clustering }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::gaussian_mixture;

    #[test]
    fn model_weights_sum_to_one() {
        let pts = gaussian_mixture(RootSeed(10), 1).points;
        let (model, _) = reference(&pts, DirichletParams::default(), RootSeed(10));
        let total: f64 = model.components.iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-6, "weights sum to 1, got {total}");
    }

    #[test]
    fn finds_plausible_cluster_count() {
        let pts = gaussian_mixture(RootSeed(11), 1).points;
        let (_, clustering) = reference(&pts, DirichletParams::default(), RootSeed(11));
        // 3 generating components; the DP should settle between 1 and k0.
        assert!(clustering.k() >= 1 && clustering.k() <= 10, "k = {}", clustering.k());
    }

    #[test]
    fn empty_components_decay() {
        let pts = gaussian_mixture(RootSeed(12), 1).points;
        let (model, _) = reference(&pts, DirichletParams::default(), RootSeed(12));
        let dead: Vec<&Component> = model.components.iter().filter(|c| c.count == 0).collect();
        for c in dead {
            assert!(c.weight < 0.01, "dead component kept weight {}", c.weight);
        }
    }

    #[test]
    fn mr_matches_reference_exactly() {
        use vcluster::spec::{ClusterSpec, Placement};
        let pts = gaussian_mixture(RootSeed(13), 1).points;
        let params = DirichletParams { iterations: 4, ..Default::default() };
        let spec =
            ClusterSpec::builder().hosts(2).vms(4).placement(Placement::SingleDomain).build();
        let mut ml = crate::mlrt::MlRuntime::new(spec, pts.clone(), RootSeed(13));
        let (mr_model, _, _) = run_mr(&mut ml, params, RootSeed(14));
        let (ref_model, _) = reference(&pts, params, RootSeed(14));
        // Same seeded Gibbs draws → identical models.
        for (a, b) in mr_model.components.iter().zip(&ref_model.components) {
            assert_eq!(a.count, b.count);
            assert!(Distance::Euclidean.between(&a.mean, &b.mean) < 1e-9, "means diverged");
        }
    }
}
