//! Fuzzy k-means — soft-membership extension of k-means (Mahout
//! `FuzzyKMeansDriver`).
//!
//! Each point belongs to every cluster with membership
//! `u_ic = 1 / Σ_j (d_ic / d_jc)^(2/(m−1))`; the mapper emits
//! `(cluster, (u^m · x, u^m))` for every cluster, the reducer computes the
//! weighted centroids.

use crate::kmeans::init_centers;
use crate::mlrt::{sum_weighted_tuples, Clustering, MlRunStats, MlRuntime};
use crate::vector::{scale, Distance};
use mapreduce::prelude::*;
use serde::{Deserialize, Serialize};
use simcore::rng::RootSeed;

/// Fuzzy k-means parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuzzyKMeansParams {
    /// Number of clusters.
    pub k: usize,
    /// Fuzziness exponent `m` (> 1; Mahout default 2).
    pub m: f64,
    /// Iteration cap.
    pub max_iters: u32,
    /// Stop when every center moves less than this.
    pub convergence: f64,
    /// Distance measure.
    pub distance: Distance,
}

impl Default for FuzzyKMeansParams {
    fn default() -> Self {
        FuzzyKMeansParams {
            k: 6,
            m: 2.0,
            max_iters: 10,
            convergence: 0.5,
            distance: Distance::Euclidean,
        }
    }
}

/// Memberships of one point to every center. Exact-hit points get full
/// membership in their center.
pub fn memberships(point: &[f64], centers: &[Vec<f64>], m: f64, distance: Distance) -> Vec<f64> {
    let dists: Vec<f64> = centers.iter().map(|c| distance.between(point, c)).collect();
    if let Some(hit) = dists.iter().position(|&d| d < 1e-12) {
        let mut u = vec![0.0; centers.len()];
        u[hit] = 1.0;
        return u;
    }
    let exp = 2.0 / (m - 1.0);
    let u: Vec<f64> = dists
        .iter()
        .map(|&dc| 1.0 / dists.iter().map(|&dj| (dc / dj).powf(exp)).sum::<f64>())
        .collect();
    u
}

/// One in-memory fuzzy update; returns new centers and max movement.
pub fn fuzzy_step(
    points: &[Vec<f64>],
    centers: &[Vec<f64>],
    m: f64,
    distance: Distance,
) -> (Vec<Vec<f64>>, f64) {
    let dims = centers[0].len();
    let mut sums = vec![vec![0.0; dims]; centers.len()];
    let mut weights = vec![0.0; centers.len()];
    for p in points {
        let u = memberships(p, centers, m, distance);
        for (c, &uc) in u.iter().enumerate() {
            let w = uc.powf(m);
            for (s, &x) in sums[c].iter_mut().zip(p) {
                *s += w * x;
            }
            weights[c] += w;
        }
    }
    let mut moved: f64 = 0.0;
    let new_centers: Vec<Vec<f64>> = sums
        .into_iter()
        .zip(&weights)
        .zip(centers)
        .map(|((mut s, &w), old)| {
            if w <= 0.0 {
                old.clone()
            } else {
                scale(&mut s, 1.0 / w);
                moved = moved.max(Distance::Euclidean.between(&s, old));
                s
            }
        })
        .collect();
    (new_centers, moved)
}

/// In-memory reference run.
pub fn reference(
    points: &[Vec<f64>],
    params: FuzzyKMeansParams,
    seed: RootSeed,
) -> (Clustering, u32) {
    let mut centers = init_centers(points, params.k, seed);
    let mut iters = 0;
    for _ in 0..params.max_iters {
        iters += 1;
        let (next, moved) = fuzzy_step(points, &centers, params.m, params.distance);
        centers = next;
        if moved < params.convergence {
            break;
        }
    }
    let assignments = points
        .iter()
        .map(|p| {
            let u = memberships(p, &centers, params.m, params.distance);
            u.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
                .map(|(i, _)| i)
                .expect("k > 0")
        })
        .collect();
    (Clustering { centers, assignments }, iters)
}

/// One fuzzy k-means MapReduce pass.
#[derive(Debug, Clone)]
pub struct FuzzyPass {
    /// Current centers.
    pub centers: Vec<Vec<f64>>,
    /// Fuzziness exponent.
    pub m: f64,
    /// Distance measure.
    pub distance: Distance,
}

impl MapReduceApp for FuzzyPass {
    fn name(&self) -> &str {
        "fuzzy-kmeans"
    }

    fn map(&self, _k: &K, v: &V, out: &mut dyn FnMut(K, V)) {
        let p = v.as_vector();
        let u = memberships(p, &self.centers, self.m, self.distance);
        for (c, &uc) in u.iter().enumerate() {
            let w = uc.powf(self.m);
            let wx: Vec<f64> = p.iter().map(|&x| w * x).collect();
            out(K::Int(c as i64), V::Tuple(vec![V::Vector(wx), V::Float(w)]));
        }
    }

    fn combine(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V)) -> bool {
        let (sum, w) = sum_weighted_tuples(values);
        out(key.clone(), V::Tuple(vec![V::Vector(sum), V::Float(w)]));
        true
    }

    fn reduce(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V)) {
        let (mut sum, w) = sum_weighted_tuples(values);
        if w > 0.0 {
            scale(&mut sum, 1.0 / w);
        }
        out(key.clone(), V::Vector(sum));
    }
}

/// Runs fuzzy k-means as a MapReduce job sequence with a final hard
/// assignment pass.
pub fn run_mr(
    ml: &mut MlRuntime,
    params: FuzzyKMeansParams,
    seed: RootSeed,
) -> (Clustering, MlRunStats) {
    let mut centers = init_centers(ml.points(), params.k, seed);
    let mut per_pass = Vec::new();
    let mut iters = 0;
    for _ in 0..params.max_iters {
        iters += 1;
        let app = FuzzyPass { centers: centers.clone(), m: params.m, distance: params.distance };
        let result = ml.run_pass("fuzzy", Box::new(app), JobConfig::default().with_reduces(1));
        per_pass.push(result.elapsed_secs());
        let mut moved: f64 = 0.0;
        let mut next = centers.clone();
        for (k, v) in &result.outputs {
            let c = k.as_int() as usize;
            let nc = v.as_vector().to_vec();
            moved = moved.max(Distance::Euclidean.between(&nc, &centers[c]));
            next[c] = nc;
        }
        centers = next;
        if moved < params.convergence {
            break;
        }
    }
    let assignments = ml.assign(&centers, params.distance);
    let elapsed_s = per_pass.iter().sum();
    (
        Clustering { centers, assignments },
        MlRunStats { iterations: iters, elapsed_s, per_pass_s: per_pass },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 10.0)] {
            for i in 0..15 {
                pts.push(vec![cx + (i % 4) as f64 * 0.2, cy + (i / 4) as f64 * 0.2]);
            }
        }
        pts
    }

    #[test]
    fn memberships_sum_to_one() {
        let centers = vec![vec![0.0, 0.0], vec![5.0, 5.0], vec![0.0, 5.0]];
        let u = memberships(&[1.0, 1.0], &centers, 2.0, Distance::Euclidean);
        assert!((u.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(u.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // Closest center gets the highest membership.
        assert!(u[0] > u[1] && u[0] > u[2]);
    }

    #[test]
    fn exact_center_hit_is_crisp() {
        let centers = vec![vec![1.0, 1.0], vec![5.0, 5.0]];
        let u = memberships(&[1.0, 1.0], &centers, 2.0, Distance::Euclidean);
        assert_eq!(u, vec![1.0, 0.0]);
    }

    #[test]
    fn reference_separates_blobs() {
        let pts = two_blobs();
        let params =
            FuzzyKMeansParams { k: 2, max_iters: 25, convergence: 1e-3, ..Default::default() };
        let (model, _) = reference(&pts, params, RootSeed(8));
        let first_half = &model.assignments[..15];
        let second_half = &model.assignments[15..];
        assert!(first_half.iter().all(|&a| a == first_half[0]));
        assert!(second_half.iter().all(|&a| a == second_half[0]));
        assert_ne!(first_half[0], second_half[0]);
    }

    #[test]
    fn mr_matches_reference() {
        use vcluster::spec::{ClusterSpec, Placement};
        let pts = two_blobs();
        let spec =
            ClusterSpec::builder().hosts(2).vms(4).placement(Placement::SingleDomain).build();
        let mut ml = crate::mlrt::MlRuntime::new(spec, pts.clone(), RootSeed(9));
        let params =
            FuzzyKMeansParams { k: 2, max_iters: 25, convergence: 1e-3, ..Default::default() };
        let (mr_model, stats) = run_mr(&mut ml, params, RootSeed(8));
        let (ref_model, _) = reference(&pts, params, RootSeed(8));
        for (a, b) in mr_model.centers.iter().zip(&ref_model.centers) {
            assert!(
                Distance::Euclidean.between(a, b) < 1e-6,
                "MR and reference diverged: {a:?} vs {b:?}"
            );
        }
        assert!(stats.iterations >= 2);
    }
}
