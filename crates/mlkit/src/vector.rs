//! Dense vector operations and distance measures.

use serde::{Deserialize, Serialize};

/// Element-wise sum `a += b`.
///
/// # Panics
/// On dimension mismatch.
pub fn add_assign(a: &mut [f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// Scales `a` in place by `s`.
pub fn scale(a: &mut [f64], s: f64) {
    for x in a.iter_mut() {
        *x *= s;
    }
}

/// `a + b` as a new vector.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = a.to_vec();
    add_assign(&mut out, b);
    out
}

/// Weighted mean of vectors: `Σ wᵢ·vᵢ / Σ wᵢ`.
///
/// # Panics
/// If `items` is empty or total weight is zero.
pub fn weighted_mean<'a>(items: impl IntoIterator<Item = (&'a [f64], f64)>) -> Vec<f64> {
    let mut acc: Option<Vec<f64>> = None;
    let mut total = 0.0;
    for (v, w) in items {
        total += w;
        match &mut acc {
            Some(a) => {
                for (x, y) in a.iter_mut().zip(v) {
                    *x += w * y;
                }
            }
            None => acc = Some(v.iter().map(|y| w * y).collect()),
        }
    }
    let mut acc = acc.expect("weighted_mean of empty set");
    assert!(total > 0.0, "zero total weight");
    scale(&mut acc, 1.0 / total);
    acc
}

/// Distance measures (Mahout's `DistanceMeasure` hierarchy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Distance {
    /// L2.
    Euclidean,
    /// L2², cheaper when only comparisons matter.
    SquaredEuclidean,
    /// L1.
    Manhattan,
    /// `1 − cos(a, b)`.
    Cosine,
}

impl Distance {
    /// Distance between `a` and `b`.
    ///
    /// # Panics
    /// On dimension mismatch.
    pub fn between(self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        match self {
            Distance::Euclidean => {
                a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
            }
            Distance::SquaredEuclidean => {
                a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>()
            }
            Distance::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>(),
            Distance::Cosine => {
                let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
                let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
                if na == 0.0 || nb == 0.0 {
                    1.0
                } else {
                    1.0 - (dot / (na * nb)).clamp(-1.0, 1.0)
                }
            }
        }
    }
}

/// Index of the nearest center under `d`, with the distance.
///
/// # Panics
/// If `centers` is empty.
pub fn nearest(point: &[f64], centers: &[Vec<f64>], d: Distance) -> (usize, f64) {
    assert!(!centers.is_empty(), "no centers");
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centers.iter().enumerate() {
        let dist = d.between(point, c);
        if dist < best.1 {
            best = (i, dist);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let mut a = vec![1.0, 2.0];
        add_assign(&mut a, &[3.0, 4.0]);
        assert_eq!(a, vec![4.0, 6.0]);
        scale(&mut a, 0.5);
        assert_eq!(a, vec![2.0, 3.0]);
        assert_eq!(add(&[1.0], &[2.0]), vec![3.0]);
    }

    #[test]
    fn weighted_mean_weights_correctly() {
        let v1 = [0.0, 0.0];
        let v2 = [4.0, 8.0];
        let m = weighted_mean([(&v1[..], 1.0), (&v2[..], 3.0)]);
        assert_eq!(m, vec![3.0, 6.0]);
    }

    #[test]
    fn distances_agree_on_known_values() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(Distance::Euclidean.between(&a, &b), 5.0);
        assert_eq!(Distance::SquaredEuclidean.between(&a, &b), 25.0);
        assert_eq!(Distance::Manhattan.between(&a, &b), 7.0);
        let c = [1.0, 0.0];
        let dd = [0.0, 1.0];
        assert!((Distance::Cosine.between(&c, &dd) - 1.0).abs() < 1e-12);
        assert!(Distance::Cosine.between(&c, &c).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_zero_vector_is_max() {
        assert_eq!(Distance::Cosine.between(&[0.0], &[1.0]), 1.0);
    }

    #[test]
    fn nearest_picks_minimum() {
        let centers = vec![vec![0.0, 0.0], vec![10.0, 10.0], vec![2.0, 2.0]];
        let (i, d) = nearest(&[2.5, 2.0], &centers, Distance::Euclidean);
        assert_eq!(i, 2);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let _ = Distance::Euclidean.between(&[1.0], &[1.0, 2.0]);
    }
}
