//! Mean-shift canopy clustering — "produces arbitrarily-shaped clusters
//! without a priori knowledge of the number of clusters" (Mahout
//! `MeanShiftCanopyDriver`).
//!
//! Canopies (initially seeded from the data) iteratively shift toward the
//! mean of the points inside their `T1` window; the driver merges canopies
//! that come within `T2` of each other and stops when every canopy moves
//! less than the convergence delta. Each shift is one MapReduce pass: the
//! mapper emits `(canopy, (Σx, n))` for every canopy whose window covers
//! the point; the reducer averages.

use crate::canopy::{build_canopies, CanopyParams};
use crate::mlrt::{sum_weighted_tuples, Clustering, MlRunStats, MlRuntime};
use crate::vector::{scale, weighted_mean, Distance};
use mapreduce::prelude::*;
use serde::{Deserialize, Serialize};

/// Mean-shift parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanShiftParams {
    /// Window radius (points within `t1` of a canopy pull it).
    pub t1: f64,
    /// Merge radius (canopies within `t2` fuse).
    pub t2: f64,
    /// Stop when every canopy moves less than this.
    pub convergence: f64,
    /// Iteration cap.
    pub max_iters: u32,
    /// Distance measure.
    pub distance: Distance,
}

impl MeanShiftParams {
    /// Parameters suited to the Synthetic Control Chart set.
    pub fn control_chart() -> Self {
        MeanShiftParams {
            t1: 70.0,
            t2: 40.0,
            convergence: 1.0,
            max_iters: 10,
            distance: Distance::Euclidean,
        }
    }

    /// Parameters suited to the DisplayClustering 2-D samples.
    pub fn display() -> Self {
        MeanShiftParams {
            t1: 2.0,
            t2: 1.0,
            convergence: 0.05,
            max_iters: 10,
            distance: Distance::Euclidean,
        }
    }

    fn canopy(&self) -> CanopyParams {
        CanopyParams { t1: self.t1, t2: self.t2, distance: self.distance }
    }
}

/// Merges canopies closer than `t2` (mass-weighted), preserving order of
/// first appearance.
pub fn merge_canopies(
    canopies: Vec<(Vec<f64>, f64)>,
    params: MeanShiftParams,
) -> Vec<(Vec<f64>, f64)> {
    let mut merged: Vec<(Vec<f64>, f64)> = Vec::new();
    for (c, m) in canopies {
        match merged.iter_mut().find(|(mc, _)| params.distance.between(mc, &c) < params.t2) {
            Some((mc, mm)) => {
                let new_center = weighted_mean([(mc.as_slice(), *mm), (c.as_slice(), m)]);
                *mc = new_center;
                *mm += m;
            }
            None => merged.push((c, m)),
        }
    }
    merged
}

/// One in-memory shift step: every canopy moves to the mean of the points
/// inside its window; returns `(shifted canopies, max movement)`.
pub fn shift_step(
    points: &[Vec<f64>],
    canopies: &[(Vec<f64>, f64)],
    params: MeanShiftParams,
) -> (Vec<(Vec<f64>, f64)>, f64) {
    let dims = canopies[0].0.len();
    let mut sums = vec![vec![0.0; dims]; canopies.len()];
    let mut counts = vec![0.0f64; canopies.len()];
    for p in points {
        for (i, (c, _)) in canopies.iter().enumerate() {
            if params.distance.between(p, c) < params.t1 {
                crate::vector::add_assign(&mut sums[i], p);
                counts[i] += 1.0;
            }
        }
    }
    let mut moved: f64 = 0.0;
    let shifted: Vec<(Vec<f64>, f64)> = canopies
        .iter()
        .enumerate()
        .map(|(i, (old, mass))| {
            if counts[i] == 0.0 {
                (old.clone(), *mass)
            } else {
                let mut s = sums[i].clone();
                scale(&mut s, 1.0 / counts[i]);
                moved = moved.max(Distance::Euclidean.between(&s, old));
                (s, counts[i])
            }
        })
        .collect();
    (shifted, moved)
}

/// In-memory reference run.
pub fn reference(points: &[Vec<f64>], params: MeanShiftParams) -> (Clustering, u32) {
    let mut canopies = build_canopies(points, params.canopy());
    let mut iters = 0;
    for _ in 0..params.max_iters {
        iters += 1;
        let (shifted, moved) = shift_step(points, &canopies, params);
        canopies = merge_canopies(shifted, params);
        if moved < params.convergence {
            break;
        }
    }
    let centers: Vec<Vec<f64>> = canopies.into_iter().map(|(c, _)| c).collect();
    let assignments =
        points.iter().map(|p| crate::vector::nearest(p, &centers, params.distance).0).collect();
    (Clustering { centers, assignments }, iters)
}

/// One mean-shift MapReduce pass.
#[derive(Debug, Clone)]
pub struct MeanShiftPass {
    /// Current canopies (center, mass).
    pub canopies: Vec<(Vec<f64>, f64)>,
    /// Algorithm parameters.
    pub params: MeanShiftParams,
}

impl MapReduceApp for MeanShiftPass {
    fn name(&self) -> &str {
        "meanshift"
    }

    fn map(&self, _k: &K, v: &V, out: &mut dyn FnMut(K, V)) {
        let p = v.as_vector();
        for (i, (c, _)) in self.canopies.iter().enumerate() {
            if self.params.distance.between(p, c) < self.params.t1 {
                out(K::Int(i as i64), V::Tuple(vec![V::Vector(p.to_vec()), V::Float(1.0)]));
            }
        }
    }

    fn combine(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V)) -> bool {
        let (sum, w) = sum_weighted_tuples(values);
        out(key.clone(), V::Tuple(vec![V::Vector(sum), V::Float(w)]));
        true
    }

    fn reduce(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V)) {
        let (mut sum, w) = sum_weighted_tuples(values);
        scale(&mut sum, 1.0 / w);
        out(key.clone(), V::Tuple(vec![V::Vector(sum), V::Float(w)]));
    }
}

/// Runs mean shift as a MapReduce job sequence with driver-side merging.
pub fn run_mr(ml: &mut MlRuntime, params: MeanShiftParams) -> (Clustering, MlRunStats) {
    let mut canopies = build_canopies(ml.points(), params.canopy());
    let mut per_pass = Vec::new();
    let mut iters = 0;
    for _ in 0..params.max_iters {
        iters += 1;
        let app = MeanShiftPass { canopies: canopies.clone(), params };
        let result = ml.run_pass("meanshift", Box::new(app), JobConfig::default().with_reduces(1));
        per_pass.push(result.elapsed_secs());
        let mut moved: f64 = 0.0;
        let mut shifted = canopies.clone();
        for (k, v) in &result.outputs {
            let i = k.as_int() as usize;
            let t = v.as_tuple();
            let nc = t[0].as_vector().to_vec();
            moved = moved.max(Distance::Euclidean.between(&nc, &canopies[i].0));
            shifted[i] = (nc, t[1].as_float());
        }
        canopies = merge_canopies(shifted, params);
        if moved < params.convergence {
            break;
        }
    }
    let centers: Vec<Vec<f64>> = canopies.into_iter().map(|(c, _)| c).collect();
    let assignments = ml.assign(&centers, params.distance);
    let elapsed_s = per_pass.iter().sum();
    (
        Clustering { centers, assignments },
        MlRunStats { iterations: iters, elapsed_s, per_pass_s: per_pass },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::gaussian_mixture;
    use simcore::rng::RootSeed;

    #[test]
    fn canopies_shift_toward_density() {
        // One blob at (5,5); a canopy starting at its edge shifts inward.
        let pts: Vec<Vec<f64>> =
            (0..50).map(|i| vec![5.0 + (i % 7) as f64 * 0.1, 5.0 + (i / 7) as f64 * 0.1]).collect();
        let params = MeanShiftParams::display();
        let canopies = vec![(vec![4.0, 4.0], 1.0)];
        let (shifted, moved) = shift_step(&pts, &canopies, params);
        assert!(moved > 0.3, "canopy pulled toward the blob");
        let d_before = Distance::Euclidean.between(&[4.0, 4.0], &[5.3, 5.3]);
        let d_after = Distance::Euclidean.between(&shifted[0].0, &[5.3, 5.3]);
        assert!(d_after < d_before);
    }

    #[test]
    fn merging_reduces_canopy_count() {
        let params = MeanShiftParams::display();
        let canopies = vec![
            (vec![0.0, 0.0], 2.0),
            (vec![0.3, 0.0], 1.0), // within t2 of the first
            (vec![9.0, 9.0], 1.0),
        ];
        let merged = merge_canopies(canopies, params);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].1, 3.0, "masses combine");
        assert!(merged[0].0[0] > 0.0 && merged[0].0[0] < 0.3, "weighted center");
    }

    #[test]
    fn reference_converges_on_mixture() {
        let pts = gaussian_mixture(RootSeed(4), 1).points;
        let (model, iters) = reference(&pts, MeanShiftParams::display());
        assert!(iters <= 10);
        assert!(model.k() >= 2, "found structure, k = {}", model.k());
        assert!(model.k() <= 40, "not degenerate, k = {}", model.k());
    }

    #[test]
    fn mr_follows_reference_trajectory() {
        use vcluster::spec::{ClusterSpec, Placement};
        let pts = gaussian_mixture(RootSeed(5), 1).points;
        let spec =
            ClusterSpec::builder().hosts(2).vms(4).placement(Placement::SingleDomain).build();
        let mut ml = crate::mlrt::MlRuntime::new(spec, pts.clone(), RootSeed(5));
        let (mr_model, stats) = run_mr(&mut ml, MeanShiftParams::display());
        let (ref_model, _) = reference(&pts, MeanShiftParams::display());
        assert_eq!(mr_model.k(), ref_model.k(), "same number of converged canopies");
        assert!(stats.iterations >= 2);
    }
}
