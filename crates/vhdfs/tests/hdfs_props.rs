//! Property tests of namenode metadata invariants under random operation
//! sequences.

use proptest::prelude::*;
use simcore::prelude::*;
use vcluster::prelude::*;
use vhdfs::hdfs::{Hdfs, HdfsConfig};
use vhdfs::meta::Namespace;

/// A random create/delete workload.
#[derive(Debug, Clone)]
enum Op {
    Create { name: u8, len: u64 },
    Delete { name: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12, 0u64..(300 << 10)).prop_map(|(name, len)| Op::Create { name, len }),
        (0u8..12).prop_map(|name| Op::Delete { name }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After any op sequence: per-file block sizes sum to the file
    /// length; every block's replicas are distinct datanodes; per-node
    /// used space equals the sum of its replica bytes.
    #[test]
    fn namespace_invariants_hold(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut e = Engine::new();
        let spec = ClusterSpec::builder().hosts(2).vms(8).placement(Placement::CrossDomain).build();
        let c = VirtualCluster::new(&mut e, spec);
        let mut h = Hdfs::format(&c, HdfsConfig { block_size: 64 << 10, replication: 3 }, RootSeed(1));
        let datanodes: Vec<VmId> = h.datanodes().to_vec();

        for op in &ops {
            match op {
                Op::Create { name, len } => {
                    let path = format!("/f{name}");
                    if h.stat(&path).is_none() {
                        h.register_file(&c, &path, *len, VmId(1 + (name % 7) as u32));
                    }
                }
                Op::Delete { name } => {
                    h.delete(&format!("/f{name}"));
                }
            }
        }

        let paths: Vec<String> = h.namespace().paths().map(str::to_string).collect();
        let mut expected_used: std::collections::HashMap<u32, u64> = Default::default();
        for p in &paths {
            let meta = h.stat(p).expect("listed file exists");
            let mut total = 0u64;
            for &b in &meta.blocks {
                let bm = h.block(b);
                total += bm.len;
                // Replicas distinct and on datanodes.
                let mut reps = bm.replicas.clone();
                reps.sort();
                let before = reps.len();
                reps.dedup();
                prop_assert_eq!(reps.len(), before, "duplicate replica in {}", p);
                for r in &bm.replicas {
                    prop_assert!(datanodes.contains(r), "replica on non-datanode");
                    *expected_used.entry(r.0).or_insert(0) += bm.len;
                }
            }
            prop_assert_eq!(total, meta.len, "block sizes must sum to file length for {}", p);
        }
        for &dn in &datanodes {
            prop_assert_eq!(
                h.namespace().used_space(dn),
                expected_used.get(&dn.0).copied().unwrap_or(0),
                "used-space accounting for {}", dn
            );
        }
    }

    /// Raw namespace: create then delete is a perfect round trip.
    #[test]
    fn create_delete_round_trip(len in 0u64..(1 << 20), block in 1u64..(128 << 10)) {
        let mut ns = Namespace::new();
        ns.create_file("/x", len, block, |_| vec![VmId(1), VmId(2)]);
        let expected_blocks = if len == 0 { 1 } else { len.div_ceil(block) };
        prop_assert_eq!(ns.file("/x").expect("created").blocks.len() as u64, expected_blocks);
        prop_assert!(ns.delete_file("/x"));
        prop_assert_eq!(ns.file_count(), 0);
        prop_assert_eq!(ns.used_space(VmId(1)), 0);
    }
}
