//! Randomized-but-deterministic tests of namenode metadata invariants
//! under random operation sequences (seeded loops — the offline build has
//! no proptest).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcore::prelude::*;
use vcluster::prelude::*;
use vhdfs::hdfs::{Hdfs, HdfsConfig};
use vhdfs::meta::Namespace;

/// After any create/delete sequence: per-file block sizes sum to the file
/// length; every block's replicas are distinct datanodes; per-node used
/// space equals the sum of its replica bytes.
#[test]
fn namespace_invariants_hold() {
    let mut rng = StdRng::seed_from_u64(0xD15C);
    for _case in 0..48 {
        let mut e = Engine::new();
        let spec = ClusterSpec::builder().hosts(2).vms(8).placement(Placement::CrossDomain).build();
        let c = VirtualCluster::new(&mut e, spec);
        let mut h =
            Hdfs::format(&c, HdfsConfig { block_size: 64 << 10, replication: 3 }, RootSeed(1));
        let datanodes: Vec<VmId> = h.datanodes().to_vec();

        for _op in 0..rng.gen_range(1..40usize) {
            let name = rng.gen_range(0..12u8);
            if rng.gen_bool(0.5) {
                let path = format!("/f{name}");
                if h.stat(&path).is_none() {
                    let len = rng.gen_range(0..(300u64 << 10));
                    h.register_file(&c, &path, len, VmId(1 + u32::from(name % 7)));
                }
            } else {
                h.delete(&format!("/f{name}"));
            }
        }

        let paths: Vec<String> = h.namespace().paths().map(str::to_string).collect();
        let mut expected_used: std::collections::HashMap<u32, u64> = Default::default();
        for p in &paths {
            let meta = h.stat(p).expect("listed file exists");
            let mut total = 0u64;
            for &b in &meta.blocks {
                let bm = h.block(b);
                total += bm.len;
                // Replicas distinct and on datanodes.
                let mut reps = bm.replicas.clone();
                reps.sort();
                let before = reps.len();
                reps.dedup();
                assert_eq!(reps.len(), before, "duplicate replica in {p}");
                for r in &bm.replicas {
                    assert!(datanodes.contains(r), "replica on non-datanode");
                    *expected_used.entry(r.0).or_insert(0) += bm.len;
                }
            }
            assert_eq!(total, meta.len, "block sizes must sum to file length for {p}");
        }
        for &dn in &datanodes {
            assert_eq!(
                h.namespace().used_space(dn),
                expected_used.get(&dn.0).copied().unwrap_or(0),
                "used-space accounting for {dn}"
            );
        }
    }
}

/// Raw namespace: create then delete is a perfect round trip.
#[test]
fn create_delete_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x2011D);
    for _case in 0..64 {
        let len = rng.gen_range(0..(1u64 << 20));
        let block = rng.gen_range(1..(128u64 << 10));
        let mut ns = Namespace::new();
        ns.create_file("/x", len, block, |_| vec![VmId(1), VmId(2)]);
        let expected_blocks = if len == 0 { 1 } else { len.div_ceil(block) };
        assert_eq!(ns.file("/x").expect("created").blocks.len() as u64, expected_blocks);
        assert!(ns.delete_file("/x"));
        assert_eq!(ns.file_count(), 0);
        assert_eq!(ns.used_space(VmId(1)), 0);
    }
}
