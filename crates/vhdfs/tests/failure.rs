//! Datanode failure and self-healing re-replication.

use simcore::prelude::*;
use vcluster::prelude::*;
use vhdfs::hdfs::{Hdfs, HdfsConfig};

const MB: u64 = 1 << 20;

fn setup(vms: u32, replication: u32) -> (Engine, VirtualCluster, Hdfs) {
    let mut e = Engine::new();
    let spec = ClusterSpec::builder().hosts(2).vms(vms).placement(Placement::CrossDomain).build();
    let c = VirtualCluster::new(&mut e, spec);
    let h = Hdfs::format(&c, HdfsConfig { block_size: 4 * MB, replication }, RootSeed(60));
    (e, c, h)
}

/// A datanode that actually holds replicas of `/data`.
fn replica_holder(h: &Hdfs, path: &str) -> VmId {
    let blocks = h.stat(path).expect("exists").blocks.clone();
    h.block(blocks[0]).replicas[0]
}

#[test]
fn failure_triggers_re_replication() {
    let (mut e, c, mut h) = setup(8, 3);
    h.register_file(&c, "/data", 16 * MB, VmId(1));
    let victim = replica_holder(&h, "/data");
    let (re_replicated, lost) = h.fail_datanode(&mut e, &c, victim);
    assert!(re_replicated > 0, "under-replicated blocks get new copies");
    assert_eq!(lost, 0, "replication 3 survives one failure");

    // Drain the repair traffic; it must take simulated time.
    let wakeups = e.run_to_quiescence();
    let _ = wakeups;
    assert!(e.now() > SimTime::ZERO, "repair transfers consumed time");

    // Every block back at full replication, none on the dead node.
    for (_, _, replicas) in h.block_locations("/data").expect("exists") {
        assert_eq!(replicas.len(), 3, "replication restored");
        assert!(!replicas.contains(&victim), "dead node dropped");
    }
    assert!(!h.datanodes().contains(&victim));
}

#[test]
fn reads_survive_failure() {
    let (mut e, c, mut h) = setup(8, 2);
    h.register_file(&c, "/data", 8 * MB, VmId(1));
    let victim = replica_holder(&h, "/data");
    h.fail_datanode(&mut e, &c, victim);

    // A read right after the failure succeeds from surviving replicas.
    let reader = h.datanodes()[0];
    let op = h.read_file(&mut e, &c, "/data", reader, Tag::owner(simcore::owners::USER));
    let mut done = false;
    while let Some((_, w)) = e.next_wakeup() {
        if let Some(comp) = h.on_wakeup(&mut e, &w) {
            if comp.op == op {
                done = true;
            }
        }
    }
    assert!(done, "read completed from surviving replicas");
}

#[test]
fn single_replica_failure_loses_data() {
    let (mut e, c, mut h) = setup(4, 1);
    h.register_file(&c, "/fragile", 4 * MB, VmId(1));
    let victim = replica_holder(&h, "/fragile");
    let (re_replicated, lost) = h.fail_datanode(&mut e, &c, victim);
    assert_eq!(re_replicated, 0);
    assert!(lost > 0, "replication 1 cannot survive");
}

#[test]
fn new_files_avoid_dead_nodes() {
    let (mut e, c, mut h) = setup(6, 3);
    let victim = h.datanodes()[0];
    h.fail_datanode(&mut e, &c, victim);
    h.register_file(&c, "/after", 8 * MB, VmId(1));
    for (_, _, replicas) in h.block_locations("/after").expect("exists") {
        assert!(!replicas.contains(&victim), "placement skips dead node");
    }
}

#[test]
#[should_panic(expected = "not a live datanode")]
fn double_failure_rejected() {
    let (mut e, c, mut h) = setup(6, 2);
    let victim = h.datanodes()[0];
    h.fail_datanode(&mut e, &c, victim);
    h.fail_datanode(&mut e, &c, victim);
}
