//! Timed HDFS operations over the virtual cluster.
//!
//! An [`Hdfs`] instance pairs the namenode tables ([`crate::meta::Namespace`])
//! with the simulated datapath: writes run the replication pipeline
//! (client → replica 1 → replica 2 → ...; every hop a network transfer,
//! every replica an NFS-backed disk write), reads fetch each block from the
//! closest replica. Completions are routed back to the caller through the
//! tag it supplies, so MapReduce tasks and DFSIO clients just see their own
//! wakeups.
//!
//! Note the virtualization twist faithfully kept from the paper: datanode
//! "local disks" live inside VM images **stored on the shared NFS server**,
//! so every HDFS disk access also crosses the network — this is why the
//! paper finds NFS disk I/O and the network to be the platform's two
//! bottlenecks.

use crate::meta::{BlockId, BlockMeta, FileMeta, Namespace};
use crate::placement::{choose_replicas, closest_replica};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use simcore::owners;
use simcore::prelude::*;
use std::collections::HashMap;
use vcluster::cluster::{VirtualCluster, VmId};

/// Namenode RPC round trip charged per block operation.
pub const RPC_DELAY: SimDuration = SimDuration::from_micros(500);

/// `dfs.*` configuration (the paper's Hadoop Module tunables).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HdfsConfig {
    /// `dfs.block.size` in bytes.
    pub block_size: u64,
    /// `dfs.replication`.
    pub replication: u32,
}

impl Default for HdfsConfig {
    fn default() -> Self {
        // Hadoop 0.20 defaults: 64 MB blocks, 3 replicas.
        HdfsConfig { block_size: 64 * 1024 * 1024, replication: 3 }
    }
}

/// Handle to an in-flight HDFS operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HdfsOpId(pub u32);

/// Completion of an HDFS operation, carrying the caller's tag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HdfsCompletion {
    /// Which operation finished.
    pub op: HdfsOpId,
    /// Tag supplied by the caller at submission.
    pub client_tag: Tag,
    /// Bytes moved by the operation.
    pub bytes: u64,
    /// When the operation was submitted.
    pub submitted: SimTime,
}

#[derive(Debug)]
struct PendingOp {
    client_tag: Tag,
    bytes: u64,
    submitted: SimTime,
    /// Trace span name ("write" / "read" / "replicate").
    kind: &'static str,
    /// VM the operation is attributed to (trace track).
    vm: VmId,
}

/// The simulated distributed file system.
#[derive(Debug)]
pub struct Hdfs {
    cfg: HdfsConfig,
    namenode: VmId,
    datanodes: Vec<VmId>,
    ns: Namespace,
    ops: HashMap<u32, PendingOp>,
    next_op: u32,
    rng: StdRng,
}

impl Hdfs {
    /// Formats a file system on `cluster`: VM 0 is the namenode, every
    /// other VM a datanode (the paper's 1 namenode + 15 datanodes layout).
    pub fn format(cluster: &VirtualCluster, cfg: HdfsConfig, seed: RootSeed) -> Self {
        let namenode = VmId(0);
        let datanodes: Vec<VmId> = cluster.vms().filter(|v| *v != namenode).collect();
        Self::format_with(cluster, cfg, seed, &datanodes)
    }

    /// Formats a file system with an explicit datanode set — disaggregated
    /// data/compute layouts run datanode daemons on a subset of the VMs
    /// only (DESIGN.md §17).
    ///
    /// # Panics
    /// If `datanodes` is empty, contains VM 0 (the namenode), duplicates,
    /// or a VM the cluster does not have.
    pub fn format_with(
        cluster: &VirtualCluster,
        cfg: HdfsConfig,
        seed: RootSeed,
        datanodes: &[VmId],
    ) -> Self {
        let namenode = VmId(0);
        assert!(!datanodes.is_empty(), "cluster too small: no datanodes");
        let all: Vec<VmId> = cluster.vms().collect();
        for (i, &d) in datanodes.iter().enumerate() {
            assert_ne!(d, namenode, "the namenode cannot also be a datanode");
            assert!(all.contains(&d), "{d} is not a VM of this cluster");
            assert!(!datanodes[..i].contains(&d), "duplicate datanode {d}");
        }
        Hdfs {
            cfg,
            namenode,
            datanodes: datanodes.to_vec(),
            ns: Namespace::new(),
            ops: HashMap::new(),
            next_op: 0,
            rng: seed.stream("hdfs"),
        }
    }

    /// Active configuration.
    pub fn config(&self) -> HdfsConfig {
        self.cfg
    }

    /// The namenode VM.
    pub fn namenode(&self) -> VmId {
        self.namenode
    }

    /// Datanode VMs.
    pub fn datanodes(&self) -> &[VmId] {
        &self.datanodes
    }

    /// Namenode tables (read-only).
    pub fn namespace(&self) -> &Namespace {
        &self.ns
    }

    /// Replica locations per block of `path`, in file order — the
    /// JobTracker uses this for locality-aware task placement.
    pub fn block_locations(&self, path: &str) -> Option<Vec<(BlockId, u64, Vec<VmId>)>> {
        self.ns
            .file_blocks(path)?
            .into_iter()
            .map(|(id, meta)| Some((id, meta.len, meta.replicas.clone())))
            .collect()
    }

    /// Replica locations per block of every file under directory
    /// `prefix`, files in sorted path order, blocks in file order —
    /// lets a job consume a multi-part output directory (`part-r-*`)
    /// as one input. `None` if the directory is empty.
    pub fn dir_block_locations(&self, prefix: &str) -> Option<Vec<(BlockId, u64, Vec<VmId>)>> {
        let paths: Vec<String> =
            self.ns.files_under(prefix).into_iter().map(str::to_string).collect();
        if paths.is_empty() {
            return None;
        }
        let mut out = Vec::new();
        for p in paths {
            out.extend(self.block_locations(&p).expect("listed file exists"));
        }
        Some(out)
    }

    /// File metadata.
    pub fn stat(&self, path: &str) -> Option<&FileMeta> {
        self.ns.file(path)
    }

    // ----- checksum provenance (TPCx-HS, DESIGN.md §17) --------------------

    /// Records per-block content checksums for `path`, one per block in
    /// file order — data generators call this so validators can later
    /// prove the bytes that came out are the bytes that went in.
    ///
    /// # Panics
    /// If `path` does not exist or `sums.len()` differs from the file's
    /// block count.
    pub fn record_checksums(&mut self, path: &str, sums: &[u64]) {
        let blocks = self
            .ns
            .file(path)
            .unwrap_or_else(|| panic!("HDFS file not found: {path}"))
            .blocks
            .clone();
        assert_eq!(blocks.len(), sums.len(), "checksum count must match block count for {path}");
        for (b, &s) in blocks.iter().zip(sums) {
            self.ns.set_checksum(*b, s);
        }
    }

    /// Recorded checksums of `path`'s blocks in file order (`None` per
    /// block when never recorded); `None` if the path does not exist.
    pub fn block_checksums(&self, path: &str) -> Option<Vec<Option<u64>>> {
        let f = self.ns.file(path)?;
        Some(f.blocks.iter().map(|&b| self.ns.checksum(b)).collect())
    }

    /// Deterministically corrupts the recorded checksum of block
    /// `block_idx` of `path` (bit-flip), simulating namenode metadata
    /// corruption — conformance tests use this to prove the validator
    /// actually checks provenance.
    ///
    /// # Panics
    /// If the path, block index, or recorded checksum does not exist.
    pub fn corrupt_checksum(&mut self, path: &str, block_idx: usize) {
        let block =
            self.ns.file(path).unwrap_or_else(|| panic!("HDFS file not found: {path}")).blocks
                [block_idx];
        let old = self
            .ns
            .checksum(block)
            .unwrap_or_else(|| panic!("{path} block {block_idx} has no recorded checksum"));
        self.ns.set_checksum(block, old ^ 0x8000_0000_0000_0001);
    }

    /// Number of blocks in the namespace carrying a recorded checksum.
    pub fn checksummed_blocks(&self) -> usize {
        self.ns.checksum_count()
    }

    /// Block metadata.
    pub fn block(&self, id: BlockId) -> &BlockMeta {
        self.ns.block(id)
    }

    /// Deletes `path` (instant metadata operation).
    pub fn delete(&mut self, path: &str) -> bool {
        self.ns.delete_file(path)
    }

    /// Registers `path` without simulating the upload (pre-loaded input
    /// data sets). Replicas are placed as if `writer` had written it.
    pub fn register_file(
        &mut self,
        cluster: &VirtualCluster,
        path: &str,
        len: u64,
        writer: VmId,
    ) -> &FileMeta {
        let (cfg, dns) = (self.cfg, self.datanodes.clone());
        let rng = &mut self.rng;
        self.ns.create_file(path, len, cfg.block_size, |_| {
            choose_replicas(cluster, &dns, writer, cfg.replication, rng)
        })
    }

    /// Writes `len` bytes to a new file `path` from `writer`, simulating
    /// the full replication pipeline. Completion arrives as an
    /// `owners::HDFS` wakeup; route it through [`Hdfs::on_wakeup`] to
    /// recover `client_tag`.
    pub fn write_file(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        path: &str,
        len: u64,
        writer: VmId,
        client_tag: Tag,
    ) -> HdfsOpId {
        let (cfg, dns) = (self.cfg, self.datanodes.clone());
        let rng = &mut self.rng;
        let meta = self.ns.create_file(path, len, cfg.block_size, |_| {
            choose_replicas(cluster, &dns, writer, cfg.replication, rng)
        });
        let blocks = meta.blocks.clone();

        let mut chain = ChainSpec::new();
        for b in blocks {
            let bm = self.ns.block(b);
            chain = chain.delay(RPC_DELAY);
            let mut prev = writer;
            for &replica in &bm.replicas {
                chain = chain
                    .then(cluster.transfer(prev, replica, bm.len as f64))
                    .then(cluster.disk_write(replica, bm.len as f64));
                prev = replica;
            }
        }
        self.submit(engine, chain, len, client_tag, "write", writer)
    }

    /// Reads all of `path` into `reader`, block by block from the closest
    /// replicas.
    ///
    /// # Panics
    /// If `path` does not exist.
    pub fn read_file(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        path: &str,
        reader: VmId,
        client_tag: Tag,
    ) -> HdfsOpId {
        let blocks = self
            .ns
            .file_blocks(path)
            .unwrap_or_else(|| panic!("HDFS file not found: {path}"))
            .into_iter()
            .map(|(id, m)| (id, m.len, m.replicas.clone()))
            .collect::<Vec<_>>();
        let mut chain = ChainSpec::new();
        let mut total = 0u64;
        for (_, len, replicas) in blocks {
            total += len;
            let src = closest_replica(cluster, &replicas, reader, &mut self.rng);
            chain = chain
                .delay(RPC_DELAY)
                .then(cluster.disk_read(src, len as f64))
                .then(cluster.transfer(src, reader, len as f64));
        }
        self.submit(engine, chain, total, client_tag, "read", reader)
    }

    /// Reads a single block into `reader` (a MapReduce input split fetch).
    pub fn read_block(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        block: BlockId,
        reader: VmId,
        client_tag: Tag,
    ) -> HdfsOpId {
        let bm = self.ns.block(block);
        let (len, replicas) = (bm.len, bm.replicas.clone());
        let src = closest_replica(cluster, &replicas, reader, &mut self.rng);
        let chain = ChainSpec::new()
            .delay(RPC_DELAY)
            .then(cluster.disk_read(src, len as f64))
            .then(cluster.transfer(src, reader, len as f64));
        self.submit(engine, chain, len, client_tag, "read", reader)
    }

    fn submit(
        &mut self,
        engine: &mut Engine,
        chain: ChainSpec,
        bytes: u64,
        client_tag: Tag,
        kind: &'static str,
        vm: VmId,
    ) -> HdfsOpId {
        let op = HdfsOpId(self.next_op);
        self.next_op = self.next_op.wrapping_add(1);
        self.ops.insert(op.0, PendingOp { client_tag, bytes, submitted: engine.now(), kind, vm });
        engine.start_chain(chain, Tag::new(owners::HDFS, op.0, 0));
        op
    }

    /// Routes an `owners::HDFS` wakeup to its operation; returns the
    /// completion (with the caller's tag) or `None` for foreign wakeups
    /// and for internal maintenance traffic (re-replication). Every
    /// completed operation — including internal ones — is recorded as an
    /// `hdfs` trace span when tracing is enabled.
    pub fn on_wakeup(&mut self, engine: &mut Engine, wakeup: &Wakeup) -> Option<HdfsCompletion> {
        let Wakeup::Activity { tag, .. } = wakeup else {
            return None;
        };
        if tag.owner != owners::HDFS {
            return None;
        }
        let pending = self.ops.remove(&tag.a).expect("completion for unknown HDFS op");
        engine.trace_span(
            "hdfs",
            pending.kind,
            pending.vm.0,
            pending.submitted,
            &[("bytes", pending.bytes as f64)],
        );
        if pending.client_tag.owner == owners::HDFS {
            // Internal maintenance op (re-replication): nobody to notify.
            return None;
        }
        Some(HdfsCompletion {
            op: HdfsOpId(tag.a),
            client_tag: pending.client_tag,
            bytes: pending.bytes,
            submitted: pending.submitted,
        })
    }

    /// Fails a datanode: it stops serving, its replicas are dropped from
    /// the namenode tables, and for every under-replicated block a
    /// re-replication transfer (surviving replica → fresh datanode) is
    /// started — HDFS's self-healing path, the mechanism the paper credits
    /// for jobs surviving migration downtime. Returns the number of
    /// blocks that had to be re-replicated; blocks whose *only* replica
    /// lived on `vm` are lost (counted in `.1`).
    ///
    /// This also covers a datanode dying **mid-write-pipeline**: blocks
    /// are registered (with their full replica sets) at submission, so the
    /// dead node's pending replicas are dropped and re-replicated from the
    /// surviving pipeline members exactly like acknowledged ones — the
    /// model's stand-in for HDFS pipeline recovery (the in-flight transfer
    /// itself keeps flowing; only metadata and placement react).
    ///
    /// # Panics
    /// If `vm` is not a (live) datanode.
    pub fn fail_datanode(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        vm: VmId,
    ) -> (usize, usize) {
        let pos = self
            .datanodes
            .iter()
            .position(|&d| d == vm)
            .unwrap_or_else(|| panic!("{vm} is not a live datanode"));
        self.datanodes.remove(pos);
        assert!(!self.datanodes.is_empty(), "last datanode failed; file system lost");

        let affected = self.ns.drop_replicas_on(vm);
        let mut re_replicated = 0;
        let mut lost = 0;
        for (block, survivors) in affected {
            if survivors.is_empty() {
                lost += 1;
                continue;
            }
            // Pick a source and a fresh target. Prefer a target in a rack
            // the survivors don't already cover — re-replication restores
            // rack diversity, not just the replica count. On one rack the
            // preferred pool is always empty (every candidate shares the
            // survivors' rack, and an empty `choose` consumes no RNG
            // draw), so the legacy uniform pick — and its draw sequence —
            // is preserved.
            let src = closest_replica(cluster, &survivors, survivors[0], &mut self.rng);
            let candidates: Vec<VmId> =
                self.datanodes.iter().copied().filter(|d| !survivors.contains(d)).collect();
            let covered: Vec<vcluster::topology::RackId> =
                survivors.iter().map(|&v| cluster.rack_of(v)).collect();
            let fresh_rack: Vec<VmId> = candidates
                .iter()
                .copied()
                .filter(|&d| !covered.contains(&cluster.rack_of(d)))
                .collect();
            use rand::seq::SliceRandom;
            let picked = match fresh_rack.choose(&mut self.rng) {
                Some(&v) => Some(v),
                None => candidates.choose(&mut self.rng).copied(),
            };
            let Some(dst) = picked else {
                continue; // no node left to hold another replica
            };
            let len = self.ns.block(block).len;
            self.ns.add_replica(block, dst);
            let chain = ChainSpec::new()
                .delay(RPC_DELAY)
                .then(cluster.disk_read(src, len as f64))
                .then(cluster.transfer(src, dst, len as f64))
                .then(cluster.disk_write(dst, len as f64));
            // Internal op: client tag owned by HDFS itself.
            self.submit(engine, chain, len, Tag::owner(owners::HDFS), "replicate", dst);
            re_replicated += 1;
        }
        (re_replicated, lost)
    }

    /// Re-admits a previously failed VM as an *empty* datanode: it holds
    /// no replicas until future writes or re-replications place some. A
    /// no-op if `vm` already serves.
    ///
    /// # Panics
    /// If `vm` is the namenode.
    pub fn rejoin_datanode(&mut self, vm: VmId) {
        assert_ne!(vm, self.namenode, "the namenode cannot rejoin as a datanode");
        if !self.datanodes.contains(&vm) {
            self.datanodes.push(vm);
        }
    }

    /// Blocks whose live replica count fell below `dfs.replication` — the
    /// self-healing backlog after failures (0 once re-replication caught
    /// up or no spare datanode exists).
    pub fn under_replicated_blocks(&self) -> usize {
        let want = self.cfg.replication as usize;
        self.ns.blocks().iter().filter(|(_, bm)| bm.replicas.len() < want).count()
    }

    /// Blocks with zero live replicas — acknowledged data irrecoverably
    /// lost. Stays 0 as long as fewer than `dfs.replication` datanodes
    /// holding common blocks fail.
    pub fn lost_blocks(&self) -> usize {
        self.ns.blocks().iter().filter(|(_, bm)| bm.replicas.is_empty()).count()
    }

    /// Number of in-flight operations.
    pub fn inflight(&self) -> usize {
        self.ops.len()
    }

    // ----- persistence (DESIGN.md §16) ------------------------------------

    /// Appends the dynamic HDFS state — live datanode set, namenode
    /// tables, in-flight operations, and the placement RNG cursor — to
    /// `e`. Config and the namenode identity are launch-derived and not
    /// encoded.
    pub fn encode_state(&self, e: &mut simcore::persist::Encoder) {
        use simcore::persist::Persist;
        self.datanodes.encode(e);
        self.ns.encode(e);
        let mut ops: Vec<(&u32, &PendingOp)> = self.ops.iter().collect();
        ops.sort_by_key(|(k, _)| **k);
        e.usize(ops.len());
        for (k, op) in ops {
            e.u32(*k);
            op.client_tag.encode(e);
            e.u64(op.bytes);
            op.submitted.encode(e);
            e.u8(match op.kind {
                "write" => 0,
                "read" => 1,
                _ => 2,
            });
            op.vm.encode(e);
        }
        e.u32(self.next_op);
        for w in self.rng.state() {
            e.u64(w);
        }
    }

    /// Overwrites the dynamic state from bytes written by
    /// [`Hdfs::encode_state`]. The receiver must have been formatted with
    /// the same cluster + config (restore targets a fresh launch replica).
    pub fn restore_state(&mut self, d: &mut simcore::persist::Decoder) {
        use simcore::persist::Persist;
        self.datanodes = Vec::<VmId>::decode(d);
        self.ns = Namespace::decode(d);
        let n = d.usize();
        self.ops = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = d.u32();
            let client_tag = Tag::decode(d);
            let bytes = d.u64();
            let submitted = SimTime::decode(d);
            let kind = match d.u8() {
                0 => "write",
                1 => "read",
                _ => "replicate",
            };
            let vm = VmId::decode(d);
            self.ops.insert(k, PendingOp { client_tag, bytes, submitted, kind, vm });
        }
        self.next_op = d.u32();
        let s = [d.u64(), d.u64(), d.u64(), d.u64()];
        self.rng = StdRng::from_state(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcluster::prelude::*;

    const MB: u64 = 1024 * 1024;

    fn setup(placement: Placement) -> (Engine, VirtualCluster, Hdfs) {
        let mut e = Engine::new();
        let spec = ClusterSpec::builder().hosts(2).vms(8).placement(placement).build();
        let c = VirtualCluster::new(&mut e, spec);
        let h = Hdfs::format(&c, HdfsConfig { block_size: 64 * MB, replication: 2 }, RootSeed(7));
        (e, c, h)
    }

    /// Drives the engine until `op` completes, returning (time, completion).
    fn run_until_op(e: &mut Engine, h: &mut Hdfs, op: HdfsOpId) -> (SimTime, HdfsCompletion) {
        while let Some((t, w)) = e.next_wakeup() {
            if let Some(c) = h.on_wakeup(e, &w) {
                if c.op == op {
                    return (t, c);
                }
            }
        }
        panic!("op never completed");
    }

    #[test]
    fn write_then_read_round_trip() {
        let (mut e, c, mut h) = setup(Placement::SingleDomain);
        let tag = Tag::new(owners::USER, 42, 0);
        let op = h.write_file(&mut e, &c, "/data", 100 * MB, VmId(1), tag);
        let (t_w, comp) = run_until_op(&mut e, &mut h, op);
        assert_eq!(comp.client_tag, tag);
        assert_eq!(comp.bytes, 100 * MB);
        assert!(t_w.as_secs_f64() > 1.0, "write takes real time, got {t_w}");
        assert!(h.stat("/data").is_some());
        assert_eq!(h.stat("/data").unwrap().blocks.len(), 2);

        let op = h.read_file(&mut e, &c, "/data", VmId(2), tag);
        let (t_r, comp) = run_until_op(&mut e, &mut h, op);
        assert_eq!(comp.bytes, 100 * MB);
        assert!(t_r > t_w);
    }

    #[test]
    fn read_is_faster_than_write() {
        // Replication makes writes move more bytes than reads — the
        // mechanism behind DFSIO's read > write throughput (Fig. 4b).
        let (mut e, c, mut h) = setup(Placement::SingleDomain);
        let tag = Tag::owner(owners::USER);
        let start = e.now();
        let op = h.write_file(&mut e, &c, "/f", 200 * MB, VmId(1), tag);
        let (t1, _) = run_until_op(&mut e, &mut h, op);
        let write_time = t1.saturating_since(start).as_secs_f64();

        let op = h.read_file(&mut e, &c, "/f", VmId(1), tag);
        let (t2, _) = run_until_op(&mut e, &mut h, op);
        let read_time = t2.saturating_since(t1).as_secs_f64();
        assert!(
            read_time < write_time * 0.8,
            "read ({read_time:.2}s) beats write ({write_time:.2}s)"
        );
    }

    #[test]
    fn local_read_beats_remote_read() {
        let (mut e, c, mut h) = setup(Placement::CrossDomain);
        h.register_file(&c, "/local", 64 * MB, VmId(1));
        let tag = Tag::owner(owners::USER);

        let start = e.now();
        let op = h.read_file(&mut e, &c, "/local", VmId(1), tag);
        let (t1, _) = run_until_op(&mut e, &mut h, op);
        let local = t1.saturating_since(start).as_secs_f64();

        // Reader that holds no replica: likely remote.
        let far_reader = h
            .datanodes()
            .iter()
            .copied()
            .find(|v| !h.block(h.stat("/local").unwrap().blocks[0]).replicas.contains(v))
            .expect("some non-replica VM");
        let op = h.read_file(&mut e, &c, "/local", far_reader, tag);
        let (t2, _) = run_until_op(&mut e, &mut h, op);
        let remote = t2.saturating_since(t1).as_secs_f64();
        assert!(local <= remote, "local read ({local:.3}s) ≤ remote ({remote:.3}s)");
    }

    #[test]
    fn register_file_is_instant_and_placed() {
        let (e, c, mut h) = setup(Placement::SingleDomain);
        h.register_file(&c, "/pre", 130 * MB, VmId(3));
        assert_eq!(e.now(), SimTime::ZERO);
        let locs = h.block_locations("/pre").expect("exists");
        assert_eq!(locs.len(), 3); // 64 + 64 + 2 MB
        for (_, _, replicas) in locs {
            assert_eq!(replicas.len(), 2);
        }
    }

    #[test]
    fn concurrent_writes_contend_on_nfs() {
        // Two writers finish later than one writer.
        let one = {
            let (mut e, c, mut h) = setup(Placement::SingleDomain);
            let op = h.write_file(&mut e, &c, "/a", 100 * MB, VmId(1), Tag::owner(owners::USER));
            run_until_op(&mut e, &mut h, op).0.as_secs_f64()
        };
        let two = {
            let (mut e, c, mut h) = setup(Placement::SingleDomain);
            h.write_file(&mut e, &c, "/a", 100 * MB, VmId(1), Tag::owner(owners::USER));
            let op2 = h.write_file(&mut e, &c, "/b", 100 * MB, VmId(2), Tag::owner(owners::USER));
            run_until_op(&mut e, &mut h, op2).0.as_secs_f64()
        };
        assert!(two > one * 1.5, "NFS contention: two writers {two:.2}s vs one {one:.2}s");
    }

    #[test]
    fn datanode_loss_mid_write_pipeline_recovers() {
        let (mut e, c, mut h) = setup(Placement::SingleDomain);
        let tag = Tag::new(owners::USER, 7, 0);
        let op = h.write_file(&mut e, &c, "/mid", 100 * MB, VmId(1), tag);
        // Kill a pipeline member while the write is still in flight.
        let victim = h.block(h.stat("/mid").unwrap().blocks[0]).replicas[0];
        let (re_replicated, lost) = h.fail_datanode(&mut e, &c, victim);
        assert_eq!(lost, 0, "replication 2 survives one failure");
        assert!(re_replicated >= 1, "the victim's pending replicas re-replicate");
        assert!(h.under_replicated_blocks() == 0, "re-replication already registered");
        // The write and the repair traffic both complete.
        let (_, comp) = run_until_op(&mut e, &mut h, op);
        assert_eq!(comp.bytes, 100 * MB);
        while let Some((_, w)) = e.next_wakeup() {
            h.on_wakeup(&mut e, &w);
        }
        assert_eq!(h.inflight(), 0);
        assert_eq!(h.lost_blocks(), 0);
        for (_, bm) in h.namespace().blocks() {
            assert!(!bm.replicas.contains(&victim), "dead node holds nothing");
            assert_eq!(bm.replicas.len(), 2, "full replication restored");
        }
        // The file is still fully readable afterwards.
        let op = h.read_file(&mut e, &c, "/mid", VmId(2), tag);
        let (_, comp) = run_until_op(&mut e, &mut h, op);
        assert_eq!(comp.bytes, 100 * MB);
    }

    #[test]
    fn rejoined_datanode_serves_again() {
        let (mut e, c, mut h) = setup(Placement::SingleDomain);
        h.register_file(&c, "/pre", 64 * MB, VmId(2));
        let n = h.datanodes().len();
        h.fail_datanode(&mut e, &c, VmId(3));
        assert_eq!(h.datanodes().len(), n - 1);
        h.rejoin_datanode(VmId(3));
        h.rejoin_datanode(VmId(3)); // idempotent
        assert_eq!(h.datanodes().len(), n);
        assert_eq!(h.namespace().used_space(VmId(3)), 0, "rejoins empty");
        // New writes may land on the rejoined node again.
        let op = h.write_file(&mut e, &c, "/post", 100 * MB, VmId(3), Tag::owner(owners::USER));
        run_until_op(&mut e, &mut h, op);
    }

    #[test]
    #[should_panic(expected = "namenode cannot rejoin")]
    fn namenode_rejoin_is_rejected() {
        let (_e, _c, mut h) = setup(Placement::SingleDomain);
        h.rejoin_datanode(VmId(0));
    }

    #[test]
    fn format_with_restricts_the_datanode_set() {
        let mut e = Engine::new();
        let spec =
            ClusterSpec::builder().hosts(2).vms(8).placement(Placement::SingleDomain).build();
        let c = VirtualCluster::new(&mut e, spec);
        let dns = [VmId(1), VmId(2), VmId(3)];
        let mut h =
            Hdfs::format_with(&c, HdfsConfig { block_size: MB, replication: 2 }, RootSeed(7), &dns);
        assert_eq!(h.datanodes(), &dns);
        // Even a non-datanode writer's blocks land only on datanodes.
        h.register_file(&c, "/f", 10 * MB, VmId(6));
        for (_, _, replicas) in h.block_locations("/f").unwrap() {
            for r in replicas {
                assert!(dns.contains(&r), "{r} is not a datanode");
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot also be a datanode")]
    fn format_with_rejects_the_namenode() {
        let mut e = Engine::new();
        let spec =
            ClusterSpec::builder().hosts(2).vms(4).placement(Placement::SingleDomain).build();
        let c = VirtualCluster::new(&mut e, spec);
        Hdfs::format_with(&c, HdfsConfig::default(), RootSeed(7), &[VmId(0), VmId(1)]);
    }

    #[test]
    fn dir_block_locations_concatenates_parts_in_path_order() {
        let (e, c, mut h) = setup(Placement::SingleDomain);
        let _ = e;
        h.register_file(&c, "/out/part-r-00001", 70 * MB, VmId(1));
        h.register_file(&c, "/out/part-r-00000", 100 * MB, VmId(2));
        let locs = h.dir_block_locations("/out").expect("two parts");
        // part-r-00000 first (2 blocks of 64+36 MB), then part-r-00001.
        let f0 = h.stat("/out/part-r-00000").unwrap().blocks.clone();
        let f1 = h.stat("/out/part-r-00001").unwrap().blocks.clone();
        let got: Vec<BlockId> = locs.iter().map(|(b, _, _)| *b).collect();
        let want: Vec<BlockId> = f0.into_iter().chain(f1).collect();
        assert_eq!(got, want);
        assert!(h.dir_block_locations("/empty").is_none());
    }

    #[test]
    fn checksum_provenance_round_trips_and_corrupts() {
        let (e, c, mut h) = setup(Placement::SingleDomain);
        let _ = e;
        h.register_file(&c, "/in", 130 * MB, VmId(1));
        assert_eq!(h.block_checksums("/in").unwrap(), vec![None, None, None]);
        h.record_checksums("/in", &[1, 2, 3]);
        assert_eq!(h.block_checksums("/in").unwrap(), vec![Some(1), Some(2), Some(3)]);
        assert_eq!(h.checksummed_blocks(), 3);
        h.corrupt_checksum("/in", 1);
        let sums = h.block_checksums("/in").unwrap();
        assert_eq!(sums[0], Some(1));
        assert_ne!(sums[1], Some(2));
        assert_eq!(sums[2], Some(3));
    }

    #[test]
    fn delete_releases_space() {
        let (e, c, mut h) = setup(Placement::SingleDomain);
        let _ = e;
        h.register_file(&c, "/x", 64 * MB, VmId(1));
        assert!(h.namespace().used_space(VmId(1)) > 0);
        assert!(h.delete("/x"));
        assert_eq!(h.namespace().used_space(VmId(1)), 0);
        assert!(h.stat("/x").is_none());
    }
}
