//! Replica placement and replica selection policies.
//!
//! Hadoop's default placement, with the physical host standing in for the
//! rack: first replica on the writer (if it is a datanode), second on a
//! different host, third co-located with the second. Reads pick the
//! *closest* replica: same VM ≻ same host ≻ remote.

use rand::seq::SliceRandom;
use rand::Rng;
use vcluster::cluster::{VirtualCluster, VmId};

/// Chooses `replication` replica locations for a block written by `writer`.
///
/// Guarantees: locations are distinct; the first is `writer` when `writer`
/// is a datanode; the second lands on a different host than the first when
/// the cluster spans hosts; never returns more replicas than datanodes.
pub fn choose_replicas(
    cluster: &VirtualCluster,
    datanodes: &[VmId],
    writer: VmId,
    replication: u32,
    rng: &mut impl Rng,
) -> Vec<VmId> {
    assert!(!datanodes.is_empty(), "no datanodes to place replicas on");
    let want = (replication.max(1) as usize).min(datanodes.len());
    let mut chosen: Vec<VmId> = Vec::with_capacity(want);

    // First replica: the writer itself, when it stores data.
    if datanodes.contains(&writer) {
        chosen.push(writer);
    } else {
        chosen.push(*datanodes.choose(rng).expect("non-empty"));
    }

    // Second replica: off-host ("off-rack") from the first, if possible.
    if chosen.len() < want {
        let first_host = cluster.host_of(chosen[0]);
        let off_host: Vec<VmId> = datanodes
            .iter()
            .copied()
            .filter(|v| !chosen.contains(v) && cluster.host_of(*v) != first_host)
            .collect();
        let pool: Vec<VmId> = if off_host.is_empty() {
            datanodes.iter().copied().filter(|v| !chosen.contains(v)).collect()
        } else {
            off_host
        };
        if let Some(&v) = pool.choose(rng) {
            chosen.push(v);
        }
    }

    // Third replica: same host as the second, different node.
    if chosen.len() < want {
        let second_host = cluster.host_of(chosen[1]);
        let same_host: Vec<VmId> = datanodes
            .iter()
            .copied()
            .filter(|v| !chosen.contains(v) && cluster.host_of(*v) == second_host)
            .collect();
        let pool: Vec<VmId> = if same_host.is_empty() {
            datanodes.iter().copied().filter(|v| !chosen.contains(v)).collect()
        } else {
            same_host
        };
        if let Some(&v) = pool.choose(rng) {
            chosen.push(v);
        }
    }

    // Any further replicas: uniform over the remainder.
    while chosen.len() < want {
        let pool: Vec<VmId> = datanodes.iter().copied().filter(|v| !chosen.contains(v)).collect();
        match pool.choose(rng) {
            Some(&v) => chosen.push(v),
            None => break,
        }
    }
    chosen
}

/// Picks the replica a reader on `reader` should fetch from: itself if it
/// holds one, else a same-host replica, else a uniformly random one.
pub fn closest_replica(
    cluster: &VirtualCluster,
    replicas: &[VmId],
    reader: VmId,
    rng: &mut impl Rng,
) -> VmId {
    assert!(!replicas.is_empty(), "block has no replicas");
    if replicas.contains(&reader) {
        return reader;
    }
    let reader_host = cluster.host_of(reader);
    let same_host: Vec<VmId> =
        replicas.iter().copied().filter(|v| cluster.host_of(*v) == reader_host).collect();
    if let Some(&v) = same_host.choose(rng) {
        return v;
    }
    *replicas.choose(rng).expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::prelude::*;
    use vcluster::prelude::*;

    fn cross_cluster(vms: u32) -> (Engine, VirtualCluster) {
        let mut e = Engine::new();
        let spec =
            ClusterSpec::builder().hosts(2).vms(vms).placement(Placement::CrossDomain).build();
        let c = VirtualCluster::new(&mut e, spec);
        (e, c)
    }

    #[test]
    fn writer_gets_first_replica() {
        let (_, c) = cross_cluster(8);
        let dns: Vec<VmId> = (1..8).map(VmId).collect();
        let mut rng = RootSeed(1).stream("t");
        let reps = choose_replicas(&c, &dns, VmId(3), 3, &mut rng);
        assert_eq!(reps[0], VmId(3));
        assert_eq!(reps.len(), 3);
    }

    #[test]
    fn second_replica_is_off_host() {
        let (_, c) = cross_cluster(8);
        let dns: Vec<VmId> = (1..8).map(VmId).collect();
        let mut rng = RootSeed(2).stream("t");
        for _ in 0..20 {
            let reps = choose_replicas(&c, &dns, VmId(2), 3, &mut rng);
            assert_ne!(
                c.host_of(reps[0]),
                c.host_of(reps[1]),
                "second replica must be on a different host"
            );
        }
    }

    #[test]
    fn replicas_are_distinct_and_bounded() {
        let (_, c) = cross_cluster(4);
        let dns: Vec<VmId> = (1..4).map(VmId).collect();
        let mut rng = RootSeed(3).stream("t");
        // Ask for more replicas than datanodes: capped at 3.
        let reps = choose_replicas(&c, &dns, VmId(1), 10, &mut rng);
        assert_eq!(reps.len(), 3);
        let mut dedup = reps.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), reps.len(), "replicas must be distinct");
    }

    #[test]
    fn non_datanode_writer_places_randomly() {
        let (_, c) = cross_cluster(8);
        let dns: Vec<VmId> = (1..8).map(VmId).collect();
        let mut rng = RootSeed(4).stream("t");
        let reps = choose_replicas(&c, &dns, VmId(0), 3, &mut rng);
        assert!(dns.contains(&reps[0]), "first replica must be a datanode");
    }

    #[test]
    fn closest_replica_prefers_local_then_host() {
        let (_, c) = cross_cluster(8);
        let mut rng = RootSeed(5).stream("t");
        // Reader holds a replica.
        assert_eq!(closest_replica(&c, &[VmId(1), VmId(2)], VmId(2), &mut rng), VmId(2));
        // Same-host replica: vm0 and vm2 are both on host 0 (round-robin).
        let picked = closest_replica(&c, &[VmId(2), VmId(3)], VmId(0), &mut rng);
        assert_eq!(picked, VmId(2), "same-host replica preferred");
    }
}
