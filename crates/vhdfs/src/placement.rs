//! Replica placement and replica selection policies.
//!
//! Hadoop's default placement over the cluster topology: first replica on
//! the writer (if it is a datanode), second in a different *failure
//! domain*, third co-located with the second. Reads pick the *closest*
//! replica by topology distance: same VM ≻ same host ≻ same rack ≻
//! off-rack.
//!
//! The failure domain is the rack when the topology has more than one,
//! and the physical host on the paper's flat single-rack testbed (where
//! the host *is* the only failure boundary). On a single rack every
//! candidate pool below is exactly what the pre-topology policy built, so
//! the RNG draw sequence — and therefore every golden trace — is
//! unchanged.

use rand::seq::SliceRandom;
use rand::Rng;
use vcluster::cluster::{VirtualCluster, VmId};
use vcluster::topology::LocalityTier;

/// Hadoop-style tree distance between two VMs (0 same node, 2 same host,
/// 4 same rack, 6 off-rack).
pub fn distance(cluster: &VirtualCluster, a: VmId, b: VmId) -> u32 {
    cluster.distance(a, b)
}

/// Locality tier of `replica` as seen from `reader`.
pub fn tier_of(cluster: &VirtualCluster, reader: VmId, replica: VmId) -> LocalityTier {
    cluster.tier(reader, replica)
}

/// The failure-domain index of `vm`: its rack on a multi-rack fabric,
/// its host on the flat single-rack one.
fn domain_of(cluster: &VirtualCluster, vm: VmId) -> u32 {
    if cluster.rack_count() > 1 {
        cluster.rack_of(vm).0
    } else {
        cluster.host_of(vm).0
    }
}

/// Chooses `replication` replica locations for a block written by `writer`.
///
/// Guarantees: locations are distinct; the first is `writer` when `writer`
/// is a datanode; the second lands in a different failure domain (rack,
/// or host on one rack) than the first when the cluster spans domains;
/// the third shares the second's domain. Never returns more replicas than
/// datanodes.
pub fn choose_replicas(
    cluster: &VirtualCluster,
    datanodes: &[VmId],
    writer: VmId,
    replication: u32,
    rng: &mut impl Rng,
) -> Vec<VmId> {
    assert!(!datanodes.is_empty(), "no datanodes to place replicas on");
    let want = (replication.max(1) as usize).min(datanodes.len());
    let mut chosen: Vec<VmId> = Vec::with_capacity(want);

    // First replica: the writer itself, when it stores data.
    if datanodes.contains(&writer) {
        chosen.push(writer);
    } else {
        chosen.push(*datanodes.choose(rng).expect("non-empty"));
    }

    // Second replica: off-domain (off-rack, or off-host on one rack) from
    // the first, if possible.
    if chosen.len() < want {
        let first_domain = domain_of(cluster, chosen[0]);
        let off_domain: Vec<VmId> = datanodes
            .iter()
            .copied()
            .filter(|v| !chosen.contains(v) && domain_of(cluster, *v) != first_domain)
            .collect();
        let pool: Vec<VmId> = if off_domain.is_empty() {
            datanodes.iter().copied().filter(|v| !chosen.contains(v)).collect()
        } else {
            off_domain
        };
        if let Some(&v) = pool.choose(rng) {
            chosen.push(v);
        }
    }

    // Third replica: same domain as the second, different node.
    if chosen.len() < want {
        let second_domain = domain_of(cluster, chosen[1]);
        let same_domain: Vec<VmId> = datanodes
            .iter()
            .copied()
            .filter(|v| !chosen.contains(v) && domain_of(cluster, *v) == second_domain)
            .collect();
        let pool: Vec<VmId> = if same_domain.is_empty() {
            datanodes.iter().copied().filter(|v| !chosen.contains(v)).collect()
        } else {
            same_domain
        };
        if let Some(&v) = pool.choose(rng) {
            chosen.push(v);
        }
    }

    // Any further replicas: uniform over the remainder.
    while chosen.len() < want {
        let pool: Vec<VmId> = datanodes.iter().copied().filter(|v| !chosen.contains(v)).collect();
        match pool.choose(rng) {
            Some(&v) => chosen.push(v),
            None => break,
        }
    }
    chosen
}

/// Picks the replica a reader on `reader` should fetch from: the closest
/// by topology distance, ties broken uniformly at random — itself if it
/// holds one, else a same-host replica, else a same-rack replica, else
/// any. (On one rack "same rack" covers every replica, so the final two
/// tiers collapse into the legacy uniform fallback with an identical
/// draw.)
pub fn closest_replica(
    cluster: &VirtualCluster,
    replicas: &[VmId],
    reader: VmId,
    rng: &mut impl Rng,
) -> VmId {
    assert!(!replicas.is_empty(), "block has no replicas");
    if replicas.contains(&reader) {
        return reader;
    }
    for tier in [LocalityTier::Host, LocalityTier::Rack] {
        let pool: Vec<VmId> =
            replicas.iter().copied().filter(|v| cluster.tier(reader, *v) == tier).collect();
        if let Some(&v) = pool.choose(rng) {
            return v;
        }
    }
    *replicas.choose(rng).expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::prelude::*;
    use vcluster::prelude::*;

    fn cross_cluster(vms: u32) -> (Engine, VirtualCluster) {
        let mut e = Engine::new();
        let spec =
            ClusterSpec::builder().hosts(2).vms(vms).placement(Placement::CrossDomain).build();
        let c = VirtualCluster::new(&mut e, spec);
        (e, c)
    }

    /// 4 hosts over 2 racks (hosts 0,1 | 2,3), VMs round-robin: even VMs
    /// land in rack 0 on hosts 0/2... specifically vm v → host v%4.
    fn racked_cluster(vms: u32) -> (Engine, VirtualCluster) {
        let mut e = Engine::new();
        let spec = ClusterSpec::builder()
            .hosts(4)
            .vms(vms)
            .placement(Placement::CrossDomain)
            .racks(2)
            .build();
        let c = VirtualCluster::new(&mut e, spec);
        (e, c)
    }

    #[test]
    fn writer_gets_first_replica() {
        let (_, c) = cross_cluster(8);
        let dns: Vec<VmId> = (1..8).map(VmId).collect();
        let mut rng = RootSeed(1).stream("t");
        let reps = choose_replicas(&c, &dns, VmId(3), 3, &mut rng);
        assert_eq!(reps[0], VmId(3));
        assert_eq!(reps.len(), 3);
    }

    #[test]
    fn second_replica_is_off_host() {
        let (_, c) = cross_cluster(8);
        let dns: Vec<VmId> = (1..8).map(VmId).collect();
        let mut rng = RootSeed(2).stream("t");
        for _ in 0..20 {
            let reps = choose_replicas(&c, &dns, VmId(2), 3, &mut rng);
            assert_ne!(
                c.host_of(reps[0]),
                c.host_of(reps[1]),
                "second replica must be on a different host"
            );
        }
    }

    #[test]
    fn replicas_are_distinct_and_bounded() {
        let (_, c) = cross_cluster(4);
        let dns: Vec<VmId> = (1..4).map(VmId).collect();
        let mut rng = RootSeed(3).stream("t");
        // Ask for more replicas than datanodes: capped at 3.
        let reps = choose_replicas(&c, &dns, VmId(1), 10, &mut rng);
        assert_eq!(reps.len(), 3);
        let mut dedup = reps.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), reps.len(), "replicas must be distinct");
    }

    #[test]
    fn non_datanode_writer_places_randomly() {
        let (_, c) = cross_cluster(8);
        let dns: Vec<VmId> = (1..8).map(VmId).collect();
        let mut rng = RootSeed(4).stream("t");
        let reps = choose_replicas(&c, &dns, VmId(0), 3, &mut rng);
        assert!(dns.contains(&reps[0]), "first replica must be a datanode");
    }

    #[test]
    fn closest_replica_prefers_local_then_host() {
        let (_, c) = cross_cluster(8);
        let mut rng = RootSeed(5).stream("t");
        // Reader holds a replica.
        assert_eq!(closest_replica(&c, &[VmId(1), VmId(2)], VmId(2), &mut rng), VmId(2));
        // Same-host replica: vm0 and vm2 are both on host 0 (round-robin).
        let picked = closest_replica(&c, &[VmId(2), VmId(3)], VmId(0), &mut rng);
        assert_eq!(picked, VmId(2), "same-host replica preferred");
    }

    #[test]
    fn second_replica_is_off_rack_on_multi_rack() {
        let (_, c) = racked_cluster(12);
        let dns: Vec<VmId> = (1..12).map(VmId).collect();
        let mut rng = RootSeed(6).stream("t");
        for _ in 0..20 {
            let reps = choose_replicas(&c, &dns, VmId(1), 3, &mut rng);
            assert_ne!(c.rack_of(reps[0]), c.rack_of(reps[1]), "second replica must be off-rack");
            assert_eq!(c.rack_of(reps[1]), c.rack_of(reps[2]), "third shares the second's rack");
            assert_ne!(reps[1], reps[2]);
        }
    }

    /// The satellite regression: `closest_replica` resolves ties with the
    /// topology distance, pinning the chosen replica per tier.
    #[test]
    fn closest_replica_pins_each_tier() {
        let (_, c) = racked_cluster(12);
        let mut rng = RootSeed(7).stream("t");
        // Reader vm1 is on host 1 (rack 0). vm5 and vm9 also live on
        // host 1; vm2 lives on host 2 (rack 1); vm4 on host 0 (rack 0).
        assert_eq!(c.host_of(VmId(5)), c.host_of(VmId(1)));
        assert_eq!(c.rack_of(VmId(4)), c.rack_of(VmId(1)));
        assert_ne!(c.host_of(VmId(4)), c.host_of(VmId(1)));
        assert_ne!(c.rack_of(VmId(2)), c.rack_of(VmId(1)));

        // Node beats host beats rack beats off-rack.
        assert_eq!(closest_replica(&c, &[VmId(2), VmId(1)], VmId(1), &mut rng), VmId(1));
        assert_eq!(closest_replica(&c, &[VmId(2), VmId(4), VmId(5)], VmId(1), &mut rng), VmId(5));
        for _ in 0..10 {
            // Same-rack replica always beats the off-rack one, whatever
            // the RNG draws.
            assert_eq!(closest_replica(&c, &[VmId(2), VmId(4)], VmId(1), &mut rng), VmId(4));
        }
        // Only off-rack replicas left: one of them is returned.
        let picked = closest_replica(&c, &[VmId(2), VmId(6)], VmId(1), &mut rng);
        assert!(picked == VmId(2) || picked == VmId(6));
    }

    #[test]
    fn distance_matches_tiers() {
        let (_, c) = racked_cluster(12);
        assert_eq!(distance(&c, VmId(1), VmId(1)), 0);
        assert_eq!(distance(&c, VmId(1), VmId(5)), 2);
        assert_eq!(distance(&c, VmId(1), VmId(4)), 4);
        assert_eq!(distance(&c, VmId(1), VmId(2)), 6);
        assert_eq!(tier_of(&c, VmId(1), VmId(4)), LocalityTier::Rack);
    }
}
