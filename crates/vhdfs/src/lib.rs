//! # vhdfs — simulated Hadoop Distributed File System
//!
//! Namenode metadata ([`meta`]), Hadoop-default replica placement with the
//! physical host as the rack ([`placement`]), and timed read/write
//! pipelines over the virtual cluster ([`hdfs`]). Reads fetch from the
//! closest replica; writes run the full replication pipeline; and because
//! the paper stores VM images on a shared NFS server, every datanode disk
//! access also crosses the network — the platform's signature bottleneck.

#![warn(missing_docs)]

pub mod hdfs;
pub mod meta;
pub mod placement;

/// Convenience imports.
pub mod prelude {
    pub use crate::hdfs::{Hdfs, HdfsCompletion, HdfsConfig, HdfsOpId, RPC_DELAY};
    pub use crate::meta::{BlockId, BlockMeta, FileMeta, Namespace};
    pub use crate::placement::{choose_replicas, closest_replica};
}
