//! Namespace and block metadata (the namenode's tables).

use serde::{Deserialize, Serialize};
use simcore::persist::{Decoder, Encoder, Persist};
use std::collections::HashMap;
use vcluster::cluster::VmId;

/// Identifier of one HDFS block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u64);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk_{}", self.0)
    }
}

impl Persist for BlockId {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.0);
    }
    fn decode(d: &mut Decoder) -> Self {
        BlockId(d.u64())
    }
}

impl Persist for FileMeta {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.len);
        self.blocks.encode(e);
    }
    fn decode(d: &mut Decoder) -> Self {
        let len = d.u64();
        let blocks = Vec::<BlockId>::decode(d);
        FileMeta { len, blocks }
    }
}

impl Persist for BlockMeta {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.len);
        self.replicas.encode(e);
    }
    fn decode(d: &mut Decoder) -> Self {
        let len = d.u64();
        let replicas = Vec::<VmId>::decode(d);
        BlockMeta { len, replicas }
    }
}

impl Persist for Namespace {
    fn encode(&self, e: &mut Encoder) {
        self.files.encode(e);
        self.blocks.encode(e);
        self.used.encode(e);
        e.u64(self.next_block);
        self.checksums.encode(e);
    }
    fn decode(d: &mut Decoder) -> Self {
        let files = HashMap::<String, FileMeta>::decode(d);
        let blocks = HashMap::<BlockId, BlockMeta>::decode(d);
        let used = HashMap::<VmId, u64>::decode(d);
        let next_block = d.u64();
        let checksums = HashMap::<BlockId, u64>::decode(d);
        Namespace { files, blocks, used, next_block, checksums }
    }
}

/// Per-file metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileMeta {
    /// Logical length in bytes.
    pub len: u64,
    /// Blocks in file order.
    pub blocks: Vec<BlockId>,
}

/// Per-block metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockMeta {
    /// Block length in bytes (≤ the configured block size).
    pub len: u64,
    /// Replica locations; first entry is the pipeline head.
    pub replicas: Vec<VmId>,
}

/// The namenode's in-memory state: path → file → blocks → replicas.
#[derive(Debug, Default, Clone)]
pub struct Namespace {
    files: HashMap<String, FileMeta>,
    blocks: HashMap<BlockId, BlockMeta>,
    used: HashMap<VmId, u64>,
    next_block: u64,
    /// Sparse content-checksum side table (TPCx-HS provenance, DESIGN.md
    /// §17). Blocks without a recorded checksum simply have no entry.
    checksums: HashMap<BlockId, u64>,
}

impl Namespace {
    /// Empty namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// File metadata, if present.
    pub fn file(&self, path: &str) -> Option<&FileMeta> {
        self.files.get(path)
    }

    /// Block metadata.
    ///
    /// # Panics
    /// On unknown block ids (they are only ever minted here).
    pub fn block(&self, id: BlockId) -> &BlockMeta {
        self.blocks.get(&id).expect("unknown block id")
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Bytes of replica data stored on `vm`.
    pub fn used_space(&self, vm: VmId) -> u64 {
        self.used.get(&vm).copied().unwrap_or(0)
    }

    /// Registers a new file of `len` bytes split into `block_size` chunks,
    /// with replica sets chosen by `place` (called once per block).
    ///
    /// # Panics
    /// If `path` already exists or `block_size` is zero.
    pub fn create_file(
        &mut self,
        path: &str,
        len: u64,
        block_size: u64,
        mut place: impl FnMut(u64) -> Vec<VmId>,
    ) -> &FileMeta {
        assert!(!self.exists(path), "HDFS file already exists: {path}");
        assert!(block_size > 0, "block size must be positive");
        let mut blocks = Vec::new();
        let mut off = 0u64;
        // Zero-length files still get one empty block (matches the real
        // HDFS client behaviour for empty writes closely enough).
        loop {
            let blen = (len - off).min(block_size);
            let id = BlockId(self.next_block);
            self.next_block += 1;
            let replicas = place(blen);
            assert!(!replicas.is_empty(), "block placement returned no replicas");
            for &vm in &replicas {
                *self.used.entry(vm).or_insert(0) += blen;
            }
            self.blocks.insert(id, BlockMeta { len: blen, replicas });
            blocks.push(id);
            off += blen;
            if off >= len {
                break;
            }
        }
        self.files.insert(path.to_string(), FileMeta { len, blocks });
        self.files.get(path).expect("just inserted")
    }

    /// Removes `path`, releasing its blocks. Returns `false` if absent.
    pub fn delete_file(&mut self, path: &str) -> bool {
        let Some(meta) = self.files.remove(path) else {
            return false;
        };
        for b in meta.blocks {
            self.checksums.remove(&b);
            if let Some(bm) = self.blocks.remove(&b) {
                for vm in bm.replicas {
                    if let Some(u) = self.used.get_mut(&vm) {
                        *u = u.saturating_sub(bm.len);
                    }
                }
            }
        }
        true
    }

    /// `(block, meta)` pairs of `path` in file order.
    pub fn file_blocks(&self, path: &str) -> Option<Vec<(BlockId, &BlockMeta)>> {
        let f = self.files.get(path)?;
        Some(f.blocks.iter().map(|&b| (b, self.block(b))).collect())
    }

    /// All file paths (unordered).
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// All `(block, meta)` pairs in block-id order — health scans
    /// (replica counting) after failures.
    pub fn blocks(&self) -> Vec<(BlockId, &BlockMeta)> {
        let mut v: Vec<(BlockId, &BlockMeta)> =
            self.blocks.iter().map(|(&id, bm)| (id, bm)).collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }

    /// Removes every replica hosted on `vm`, returning each affected
    /// block with its surviving replicas (possibly empty = data loss).
    pub fn drop_replicas_on(&mut self, vm: VmId) -> Vec<(BlockId, Vec<VmId>)> {
        let mut affected = Vec::new();
        for (&id, bm) in self.blocks.iter_mut() {
            if let Some(pos) = bm.replicas.iter().position(|&r| r == vm) {
                bm.replicas.remove(pos);
                affected.push((id, bm.replicas.clone()));
            }
        }
        if let Some(u) = self.used.get_mut(&vm) {
            *u = 0;
        }
        affected.sort_by_key(|(id, _)| *id);
        affected
    }

    /// Registers an additional replica of `block` on `vm` (re-replication).
    ///
    /// # Panics
    /// If the block is unknown or `vm` already holds a replica.
    pub fn add_replica(&mut self, block: BlockId, vm: VmId) {
        let bm = self.blocks.get_mut(&block).expect("unknown block id");
        assert!(!bm.replicas.contains(&vm), "{vm} already replicates {block}");
        bm.replicas.push(vm);
        *self.used.entry(vm).or_insert(0) += bm.len;
    }

    /// Records (or overwrites) the content checksum of `block`.
    ///
    /// # Panics
    /// If the block is unknown.
    pub fn set_checksum(&mut self, block: BlockId, sum: u64) {
        assert!(self.blocks.contains_key(&block), "unknown block id {block}");
        self.checksums.insert(block, sum);
    }

    /// The recorded content checksum of `block`, if any.
    pub fn checksum(&self, block: BlockId) -> Option<u64> {
        self.checksums.get(&block).copied()
    }

    /// Number of blocks carrying a recorded checksum.
    pub fn checksum_count(&self) -> usize {
        self.checksums.len()
    }

    /// Paths directly or transitively under directory `prefix`
    /// (`prefix + "/..."`), sorted — HDFS has no directory inodes, so
    /// a listing is a prefix scan of the file table.
    pub fn files_under(&self, prefix: &str) -> Vec<&str> {
        let want = format!("{}/", prefix.trim_end_matches('/'));
        let mut v: Vec<&str> =
            self.files.keys().map(String::as_str).filter(|p| p.starts_with(&want)).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_splits_into_blocks() {
        let mut ns = Namespace::new();
        let meta = ns.create_file("/a", 150, 64, |_| vec![VmId(1)]);
        assert_eq!(meta.len, 150);
        assert_eq!(meta.blocks.len(), 3); // 64 + 64 + 22
        let sizes: Vec<u64> = meta.blocks.clone().iter().map(|&b| ns.block(b).len).collect();
        assert_eq!(sizes, vec![64, 64, 22]);
    }

    #[test]
    fn empty_file_gets_one_block() {
        let mut ns = Namespace::new();
        let blocks = ns.create_file("/empty", 0, 64, |_| vec![VmId(1)]).blocks.clone();
        assert_eq!(blocks.len(), 1);
        assert_eq!(ns.block(blocks[0]).len, 0);
    }

    #[test]
    fn used_space_tracks_replicas() {
        let mut ns = Namespace::new();
        ns.create_file("/a", 100, 64, |_| vec![VmId(1), VmId(2)]);
        assert_eq!(ns.used_space(VmId(1)), 100);
        assert_eq!(ns.used_space(VmId(2)), 100);
        assert_eq!(ns.used_space(VmId(3)), 0);
        assert!(ns.delete_file("/a"));
        assert_eq!(ns.used_space(VmId(1)), 0);
    }

    #[test]
    fn delete_missing_is_false() {
        let mut ns = Namespace::new();
        assert!(!ns.delete_file("/nope"));
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_create_panics() {
        let mut ns = Namespace::new();
        ns.create_file("/a", 1, 64, |_| vec![VmId(1)]);
        ns.create_file("/a", 1, 64, |_| vec![VmId(1)]);
    }

    #[test]
    fn checksums_are_sparse_and_deleted_with_the_file() {
        let mut ns = Namespace::new();
        let blocks = ns.create_file("/a", 150, 64, |_| vec![VmId(1)]).blocks.clone();
        assert_eq!(ns.checksum(blocks[0]), None);
        ns.set_checksum(blocks[0], 0xfeed);
        ns.set_checksum(blocks[1], 0xbeef);
        assert_eq!(ns.checksum(blocks[0]), Some(0xfeed));
        assert_eq!(ns.checksum_count(), 2);
        assert!(ns.delete_file("/a"));
        assert_eq!(ns.checksum_count(), 0);
    }

    #[test]
    fn files_under_lists_the_directory_sorted() {
        let mut ns = Namespace::new();
        for p in ["/out/part-r-00001", "/out/part-r-00000", "/outlier", "/in/x"] {
            ns.create_file(p, 10, 64, |_| vec![VmId(1)]);
        }
        assert_eq!(ns.files_under("/out"), vec!["/out/part-r-00000", "/out/part-r-00001"]);
        assert_eq!(ns.files_under("/out/"), vec!["/out/part-r-00000", "/out/part-r-00001"]);
        assert!(ns.files_under("/none").is_empty());
    }
}
