//! Snapshot/restore/fork determinism: a platform checkpointed at a random
//! mid-run instant and restored must finish with **byte-identical** trace
//! output — same spans, same order, same timestamps — and identical job
//! outputs, across ≥8 seeds, clean and faulted. Forks diverge only through
//! what happens to them afterwards; the parent never notices.

mod common;

use common::{fig2_hdfs, fig2_job, launch_fig2, sorted_outputs, MB};
use vhadoop::persist::Snapshot;
use vhadoop::prelude::*;
use vhadoop::simcore::persist::{validate_header, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};

const INPUT_BYTES: u64 = 4 * MB;

/// Deterministic pseudo-random checkpoint step: a seed-mixed fraction of
/// the run's total wakeup count, strictly mid-run (no RNG needed, and
/// every seed checkpoints somewhere else).
fn checkpoint_step(seed: u64, total_steps: usize) -> usize {
    assert!(total_steps > 2, "run too short to checkpoint mid-way");
    1 + (seed.wrapping_mul(2654435761) as usize) % (total_steps - 2)
}

/// The sweep's fault plan (same shape as seed_sweep's).
fn faulted_plan() -> FaultPlan {
    FaultPlan::new()
        .at(
            SimTime::from_secs(1),
            FaultKind::StragglerVm { vm: 2, factor: 0.2, duration: SimDuration::from_secs(2) },
        )
        .at(SimTime::from_secs(2), FaultKind::NodeCrash { vm: 7 })
}

/// Launches the Fig. 2 platform and submits the wordcount job without
/// driving it — the caller steps the simulation explicitly.
fn launch_and_submit(seed: u64, plan: FaultPlan) -> (VHadoop, JobId) {
    let mut p = launch_fig2(INPUT_BYTES, seed, plan);
    let (spec, app, input) = fig2_job(&mut p, INPUT_BYTES, seed);
    let id = p.rt.submit(spec, app, input);
    (p, id)
}

/// Steps `p` until the event queue drains; returns sorted outputs of the
/// submitted job, the exported trace bytes, and how many wakeups it took.
fn finish(mut p: VHadoop, id: JobId) -> (Vec<(String, i64)>, String, usize) {
    let mut outputs = Vec::new();
    let mut steps = 0;
    while let Some((_, events)) = p.step() {
        steps += 1;
        for ev in events {
            if let PlatformEvent::Job(JobEvent::JobDone(res)) = ev {
                if res.id == id {
                    outputs = sorted_outputs(&res);
                }
            }
        }
    }
    assert!(!outputs.is_empty(), "job {id:?} never finished");
    (outputs, p.rt.engine.tracer().to_chrome_json(), steps)
}

/// One seed of the round-trip check: reference run vs (checkpoint +
/// restore) vs (checkpoint + parent keeps going).
fn roundtrip_one(seed: u64, plan: FaultPlan) {
    let (reference, ref_id) = launch_and_submit(seed, plan.clone());
    let (ref_out, ref_trace, total) = finish(reference, ref_id);

    let (mut parent, id) = launch_and_submit(seed, plan);
    for _ in 0..checkpoint_step(seed, total) {
        assert!(parent.step().is_some(), "seed {seed}: drained before the checkpoint step");
    }
    let snap = parent.snapshot();
    assert_eq!(snap.version(), SNAPSHOT_VERSION);

    // The restored platform finishes byte-identically to the reference.
    let (out_r, trace_r, _) = finish(VHadoop::restore(&snap), id);
    assert_eq!(out_r, ref_out, "seed {seed}: restored outputs diverged");
    assert_eq!(trace_r, ref_trace, "seed {seed}: restored trace diverged");

    // Taking the snapshot did not perturb the parent.
    let (out_p, trace_p, _) = finish(parent, id);
    assert_eq!(out_p, ref_out, "seed {seed}: parent outputs diverged after snapshot");
    assert_eq!(trace_p, ref_trace, "seed {seed}: parent trace diverged after snapshot");
}

#[test]
fn clean_checkpoint_restore_replays_byte_identically() {
    for seed in 3000..3008u64 {
        roundtrip_one(seed, FaultPlan::new());
    }
}

#[test]
fn faulted_checkpoint_restore_replays_byte_identically() {
    for seed in 3000..3008u64 {
        roundtrip_one(seed, faulted_plan());
    }
}

#[test]
fn fork_divergence_leaves_parent_untouched() {
    let seed = 77u64;
    let (reference, ref_id) = launch_and_submit(seed, FaultPlan::new());
    let (ref_out, ref_trace, total) = finish(reference, ref_id);

    let (mut parent, id) = launch_and_submit(seed, FaultPlan::new());
    for _ in 0..total / 2 {
        parent.step().expect("still mid-run");
    }
    let mut child = parent.fork();

    // Hit the child — and only the child — with a straggler fault.
    let at = child.now() + SimDuration::from_millis(10);
    child.install_fault_plan(&FaultPlan::new().at(
        at,
        FaultKind::StragglerVm { vm: 3, factor: 0.1, duration: SimDuration::from_secs(5) },
    ));
    let (child_out, child_trace, _) = finish(child, id);
    assert_eq!(child_out, ref_out, "wordcount output is fault-independent");
    assert_ne!(child_trace, ref_trace, "the child's timeline must show the fault");
    assert!(child_trace.contains("straggler_vm"), "child trace records the injected fault");

    // The parent replays as if the fork never happened.
    let (parent_out, parent_trace, _) = finish(parent, id);
    assert_eq!(parent_out, ref_out);
    assert_eq!(parent_trace, ref_trace, "forking perturbed the parent");
}

#[test]
fn monitored_platform_round_trips() {
    let seed = 9u64;
    let launch = || {
        let mut p = VHadoop::launch(
            PlatformConfig::builder()
                .cluster(
                    ClusterSpec::builder()
                        .hosts(2)
                        .vms(8)
                        .placement(Placement::SingleDomain)
                        .build(),
                )
                .hdfs(fig2_hdfs(INPUT_BYTES))
                .monitor_interval(SimDuration::from_millis(200))
                .tracing(true)
                .seed(seed)
                .build(),
        );
        let (spec, app, input) = fig2_job(&mut p, INPUT_BYTES, seed);
        let id = p.rt.submit(spec, app, input);
        (p, id)
    };

    let (mut reference, ref_id) = launch();
    let mut done = false;
    let mut steps_to_done = 0usize;
    while let Some((_, evs)) = reference.step() {
        steps_to_done += 1;
        done |= evs
            .iter()
            .any(|e| matches!(e, PlatformEvent::Job(JobEvent::JobDone(r)) if r.id == ref_id));
        if done && !reference.migration_busy() {
            break;
        }
    }
    assert!(done);
    let ref_csv = reference.monitor().expect("monitored").to_csv();

    let (mut parent, id) = launch();
    for _ in 0..steps_to_done / 2 {
        parent.step().expect("still mid-run");
    }
    let mut restored = VHadoop::restore(&parent.snapshot());
    let mut done = false;
    while let Some((_, evs)) = restored.step() {
        done |=
            evs.iter().any(|e| matches!(e, PlatformEvent::Job(JobEvent::JobDone(r)) if r.id == id));
        if done && !restored.migration_busy() {
            break;
        }
    }
    assert!(done);
    assert_eq!(
        restored.monitor().expect("monitored").to_csv(),
        ref_csv,
        "restored monitor samples diverged"
    );
}

#[test]
fn snapshot_header_is_versioned_and_validated() {
    let (mut p, _) = launch_and_submit(5, FaultPlan::new());
    for _ in 0..50 {
        p.step();
    }
    let snap: Snapshot = p.snapshot();
    assert_eq!(&snap.bytes[..SNAPSHOT_MAGIC.len()], &SNAPSHOT_MAGIC);
    assert_eq!(validate_header(&snap.bytes), Ok(SNAPSHOT_VERSION));

    let mut corrupt = snap.bytes.clone();
    corrupt[0] ^= 0xFF;
    assert!(validate_header(&corrupt).is_err(), "corrupted magic must be rejected");

    let mut skewed = snap.bytes.clone();
    skewed[SNAPSHOT_MAGIC.len()] = 0xFF; // version LE low byte
    assert!(validate_header(&skewed).is_err(), "future versions must be rejected");
}

#[test]
fn snapshot_bytes_are_canonical_and_repeatable() {
    // Two platforms driven identically to the same instant — including
    // cancelled timers and completed flows along the way — must encode to
    // the *same bytes*, and snapshotting twice must be idempotent.
    let (reference, ref_id) = launch_and_submit(11, FaultPlan::new());
    let (_, _, total) = finish(reference, ref_id);
    let mk = || {
        let (mut p, id) = launch_and_submit(11, FaultPlan::new());
        for _ in 0..checkpoint_step(11, total) {
            p.step();
        }
        (p, id)
    };
    let (mut a, _) = mk();
    let (mut b, _) = mk();
    let snap_a = a.snapshot();
    assert_eq!(snap_a.bytes, b.snapshot().bytes, "equal states encoded to different bytes");
    assert_eq!(snap_a.bytes, a.snapshot().bytes, "snapshot is not idempotent");
    // A restored replica checkpoints to the very same bytes too.
    let mut r = VHadoop::restore(&snap_a);
    assert_eq!(r.snapshot().bytes, snap_a.bytes, "restore→snapshot is not a fixed point");
}

/// FNV-1a over the snapshot bytes of one pinned configuration. If this
/// hash moves, the on-disk format changed: bump
/// `simcore::persist::SNAPSHOT_VERSION` and re-pin.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[test]
fn golden_snapshot_hash_pins_the_format() {
    let (mut p, _) = launch_and_submit(1, FaultPlan::new());
    for _ in 0..100 {
        p.step();
    }
    let snap = p.snapshot();
    assert_eq!(snap.version(), SNAPSHOT_VERSION);
    let hash = fnv1a(&snap.bytes);
    assert_eq!(
        hash, GOLDEN_HASH,
        "snapshot encoding changed (got {hash:#018x}); bump SNAPSHOT_VERSION and re-pin"
    );
}

/// Pinned against SNAPSHOT_VERSION = 4 (what-if outcomes record which
/// makespan model priced each estimate).
const GOLDEN_HASH: u64 = 0x7b06_f0b9_a514_b7b9;
