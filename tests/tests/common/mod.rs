//! Shared helpers for the fault-injection test suites: the Fig. 2
//! wordcount configuration driven through the full `VHadoop` platform (so
//! installed fault plans are routed), with the input size as a knob.
//!
//! Not a test target itself — each suite pulls it in with `mod common;`.

#![allow(dead_code)]

use vhadoop::prelude::*;
use workloads::textgen::TextCorpus;
use workloads::wordcount::WordCountApp;

pub const MB: u64 = 1 << 20;

/// The Fig. 2 "normal" cluster: 16 VMs across 2 hosts, all in one domain.
pub fn fig2_cluster() -> ClusterSpec {
    ClusterSpec::builder().hosts(2).vms(16).placement(Placement::SingleDomain).build()
}

/// The Fig. 2 job configuration (no combiner, 4 reduces).
pub fn fig2_job_config() -> JobConfig {
    JobConfig::default().with_combiner(false).with_reduces(4)
}

/// The Fig. 2 HDFS geometry scaled to `input_bytes`: 15 blocks (one map
/// per worker VM), replication 3.
pub fn fig2_hdfs(input_bytes: u64) -> HdfsConfig {
    HdfsConfig { block_size: (input_bytes / 15).max(MB), replication: 3 }
}

/// Launches a traced, monitor-less platform on the Fig. 2 config with
/// `plan` installed at boot.
pub fn launch_fig2(input_bytes: u64, seed: u64, plan: FaultPlan) -> VHadoop {
    VHadoop::launch(
        PlatformConfig::builder()
            .cluster(fig2_cluster())
            .hdfs(fig2_hdfs(input_bytes))
            .no_monitor()
            .tracing(true)
            .faults(plan)
            .seed(seed)
            .build(),
    )
}

/// Registers the wordcount input on `p` and returns the job spec plus its
/// input generator (same corpus derivation as `run_wordcount`).
pub fn fig2_job(
    p: &mut VHadoop,
    input_bytes: u64,
    seed: u64,
) -> (JobSpec, Box<dyn MapReduceApp>, Box<dyn InputFormat>) {
    p.register_input("/wordcount/in", input_bytes, VmId(1));
    let blocks = p.rt.hdfs.stat("/wordcount/in").expect("registered").blocks.len();
    let block_size = p.rt.hdfs.config().block_size;
    let corpus = TextCorpus::english_like(RootSeed(seed).derive("corpus"));
    let last = blocks - 1;
    let input = GeneratorInput::new(blocks, block_size, move |idx| {
        let bytes = if idx == last { input_bytes - (last as u64) * block_size } else { block_size };
        corpus.split_records(idx, bytes)
    });
    let spec =
        JobSpec::new("wordcount", "/wordcount/in", "/wordcount/out").with_config(fig2_job_config());
    (spec, Box::new(WordCountApp), Box::new(input))
}

/// Runs the Fig. 2 wordcount end to end on a platform with `plan`
/// installed, drains every remaining event (fault restores, deferred
/// re-queues), and returns the job result, the exported trace, and the
/// platform for post-mortem inspection.
pub fn run_fig2(input_bytes: u64, seed: u64, plan: FaultPlan) -> (JobResult, String, VHadoop) {
    let mut p = launch_fig2(input_bytes, seed, plan);
    let (spec, app, input) = fig2_job(&mut p, input_bytes, seed);
    let result = p.run_job(spec, app, input);
    while p.step().is_some() {}
    let trace = p.rt.engine.tracer().to_chrome_json();
    (result, trace, p)
}

/// Sorted `(word, count)` pairs of a job result — the payload two runs of
/// the same corpus must agree on whatever faults were injected.
pub fn sorted_outputs(result: &JobResult) -> Vec<(String, i64)> {
    let mut v: Vec<(String, i64)> =
        result.outputs.iter().map(|(k, val)| (k.as_text().to_string(), val.as_int())).collect();
    v.sort();
    v
}

/// Asserts no acknowledged block lost a full replica set: HDFS reports
/// zero lost blocks and every block in the namespace still has at least
/// one live replica.
pub fn assert_no_data_loss(p: &VHadoop) {
    assert_eq!(p.rt.hdfs.lost_blocks(), 0, "a block lost its last replica");
    for (id, meta) in p.rt.hdfs.namespace().blocks() {
        assert!(!meta.replicas.is_empty(), "{id} has no live replica");
    }
    let injected_losses: usize = p.fault_log().iter().map(|f| f.lost_blocks).sum();
    assert_eq!(injected_losses, 0, "an injected crash destroyed data");
}
