//! Golden determinism test for the scheduling layer: the `Fifo` policy
//! must reproduce the pre-refactor monolithic JobTracker's decisions
//! exactly. Pinned to the Fig. 2 wordcount configuration (16 VMs, 4
//! reduces, no combiner) at one representative size per placement.
//!
//! The nanosecond values below were captured from the monolithic
//! `MrEngine` (before the `TaskScheduler` extraction) at the same seed; a
//! same-seed run must match them bit-for-bit. If a deliberate
//! scheduling-semantics change ever invalidates them, re-capture with
//! `cargo test -p vhadoop-integration golden -- --nocapture` and record
//! the change in CHANGES.md.

use mapreduce::config::JobConfig;
use simcore::rng::RootSeed;
use vcluster::spec::{ClusterSpec, Placement};
use vhdfs::hdfs::HdfsConfig;
use workloads::wordcount::run_wordcount_with;

/// One Fig. 2 wordcount point: 16 MB over a 16-VM cluster.
fn fig2_point(placement: Placement) -> workloads::wordcount::WordcountReport {
    let mb = 16u64;
    let spec = ClusterSpec::builder().hosts(2).vms(16).placement(placement).build();
    let cfg = JobConfig::default().with_combiner(false).with_reduces(4);
    let hdfs = HdfsConfig { block_size: ((mb << 20) / 15).max(1 << 20), replication: 3 };
    run_wordcount_with(spec, mb << 20, cfg, hdfs, RootSeed(2012))
}

#[test]
fn fifo_reproduces_pre_refactor_timings() {
    for (placement, name) in
        [(Placement::SingleDomain, "normal"), (Placement::CrossDomain, "cross-domain")]
    {
        let rep = fig2_point(placement);
        let r = &rep.result;
        println!(
            "{name}: elapsed={} map_phase={} reduce_phase={} launched_maps={} \
             data_local={} shuffle_bytes={} outputs={}",
            r.elapsed.as_nanos(),
            r.map_phase.as_nanos(),
            r.reduce_phase.as_nanos(),
            r.counters.launched_maps,
            r.counters.data_local_maps,
            r.counters.shuffle_bytes,
            r.outputs.len(),
        );
        let golden: (u64, u64, u64, u64, u64, u64, usize) = match name {
            "normal" => (11_595_668_098, 7_803_257_009, 3_792_411_089, 16, 15, 38_243_200, 4274),
            _ => (11_590_886_027, 7_803_257_009, 3_787_629_018, 16, 15, 38_243_200, 4274),
        };
        assert_eq!(
            (
                r.elapsed.as_nanos(),
                r.map_phase.as_nanos(),
                r.reduce_phase.as_nanos(),
                r.counters.launched_maps,
                r.counters.data_local_maps,
                r.counters.shuffle_bytes,
                r.outputs.len(),
            ),
            golden,
            "{name}: Fifo diverged from the pre-refactor engine"
        );
    }
}
