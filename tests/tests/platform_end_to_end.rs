//! Full-platform integration: boot → upload → job → monitor → tuner,
//! plus determinism across identical runs.

use vhadoop::prelude::*;
use workloads::textgen::TextCorpus;
use workloads::wordcount::WordCountApp;

const MB: u64 = 1 << 20;

fn platform(vms: u32) -> VHadoop {
    VHadoop::launch(
        PlatformConfig::builder()
            .cluster(
                ClusterSpec::builder().hosts(2).vms(vms).placement(Placement::CrossDomain).build(),
            )
            .seed(7)
            .build(),
    )
}

fn run_wordcount_job(p: &mut VHadoop, bytes: u64, cfg: JobConfig) -> JobResult {
    p.register_input("/in", bytes, VmId(1));
    let blocks = p.rt.hdfs.stat("/in").expect("registered").blocks.len();
    let block_size = p.rt.hdfs.config().block_size;
    let corpus = TextCorpus::english_like(RootSeed(71));
    let last = blocks - 1;
    let input = GeneratorInput::new(blocks, block_size, move |idx| {
        let b = if idx == last { bytes - last as u64 * block_size } else { block_size };
        corpus.split_records(idx, b)
    });
    let spec = JobSpec::new("wc", "/in", "/out").with_config(cfg);
    p.run_job(spec, Box::new(WordCountApp), Box::new(input))
}

#[test]
fn full_flow_boot_upload_job_monitor_tune() {
    let mut p = platform(8);

    // Step 4: upload takes simulated time and lands in HDFS.
    let up = p.upload_input("/staging", 16 * MB, VmId(2));
    assert!(up.as_secs_f64() > 0.1);
    assert_eq!(p.rt.hdfs.stat("/staging").expect("uploaded").len, 16 * MB);

    // Steps 5–8: a real job with real output.
    let cfg = JobConfig::default().with_reduces(2);
    let result = run_wordcount_job(&mut p, 8 * MB, cfg.clone());
    assert!(result.elapsed_secs() > 1.0);
    assert!(result.counters.reduce_output_records > 100, "words were counted");
    assert_eq!(
        result.counters.reduce_output_records as usize,
        result.outputs.len(),
        "counters agree with collected output"
    );

    // Step 9: the monitor saw the run; the platform can produce advice.
    let report = p.monitor_report().expect("monitoring enabled");
    assert!(report.samples > 3, "sampled during the job");
    assert!(report.bottleneck().is_some());
    let advice = p.advise(&result, &cfg);
    // Well-configured job on an under-utilized cluster: may be clean or
    // flag NFS pressure, but must never crash or suggest enabling what's
    // already on.
    assert!(!advice.actions.contains(&tuner::Action::EnableCombiner));
}

#[test]
fn identical_configs_are_bit_identical() {
    let run = || {
        let mut p = platform(6);
        let r = run_wordcount_job(&mut p, 4 * MB, JobConfig::default());
        (r.elapsed.as_nanos(), r.counters, r.outputs.len())
    };
    let (a, b) = (run(), run());
    assert_eq!(a.0, b.0, "elapsed time deterministic");
    assert_eq!(a.1, b.1, "counters deterministic");
    assert_eq!(a.2, b.2, "outputs deterministic");
}

#[test]
fn different_seeds_still_complete() {
    for seed in [1u64, 999, 123_456] {
        let mut p = VHadoop::launch(
            PlatformConfig::builder()
                .cluster(ClusterSpec::builder().hosts(2).vms(4).build())
                .seed(seed)
                .build(),
        );
        let r = run_wordcount_job(&mut p, 2 * MB, JobConfig::default());
        assert!(r.elapsed_secs() > 0.5);
    }
}

#[test]
fn monitor_csv_covers_the_run() {
    let mut p = platform(4);
    let _ = run_wordcount_job(&mut p, 4 * MB, JobConfig::default());
    let csv = p.monitor().expect("enabled").to_csv();
    assert!(csv.lines().count() > 3);
    assert!(csv.starts_with("time_s,"));
    assert!(csv.contains("vm1.vcpu"));
}

#[test]
fn migration_during_job_completes_both() {
    let mut p = platform(4);
    p.register_input("/mig", 8 * MB, VmId(1));
    let blocks = p.rt.hdfs.stat("/mig").expect("registered").blocks.len();
    let block_size = p.rt.hdfs.config().block_size;
    let corpus = TextCorpus::english_like(RootSeed(72));
    let bytes = 8 * MB;
    let last = blocks - 1;
    let input = GeneratorInput::new(blocks, block_size, move |idx| {
        let b = if idx == last { bytes - last as u64 * block_size } else { block_size };
        corpus.split_records(idx, b)
    });
    let spec = JobSpec::new("wc", "/mig", "/mig-out");
    let (rep, job) = p.migration(HostId(1)).after(SimDuration::from_secs(2)).during_job(
        spec,
        Box::new(WordCountApp),
        Box::new(input),
    );
    // Cross-domain placement: only the two VMs on host 0 needed to move.
    assert_eq!(rep.per_vm.len(), 2, "host 0's VMs migrated");
    assert!(job.counters.reduce_output_records > 0, "job survived migration");
    // All VMs now on host 1.
    for vm in p.rt.cluster.vms() {
        assert_eq!(p.rt.cluster.host_of(vm), HostId(1));
    }
}
