//! The migration session API's manual driving mode
//! (`migration(dst).start()` + `step()` + `poll()`) must be an exact
//! synonym of the one-shot `idle()` call: same report, and the report slot
//! is consumed exactly once.

mod common;

use vhadoop::prelude::*;

fn platform(seed: u64) -> VHadoop {
    VHadoop::launch(
        PlatformConfig::builder()
            .cluster(
                ClusterSpec::builder().hosts(2).vms(4).placement(Placement::SingleDomain).build(),
            )
            .no_monitor()
            .seed(seed)
            .build(),
    )
}

fn drive(p: &mut VHadoop) -> ClusterMigrationReport {
    loop {
        if let Some(rep) = p.poll() {
            return rep;
        }
        p.step().expect("migration must finish before the simulation drains");
    }
}

#[test]
fn manual_start_step_poll_equals_idle_session() {
    let mut a = platform(3);
    a.migration(HostId(1)).start();
    assert!(a.migration_busy());
    let manual = drive(&mut a);

    let one_shot = platform(3).migration(HostId(1)).idle();
    assert_eq!(manual, one_shot);
    assert_eq!(manual.per_vm.len(), 4);
}

#[test]
fn poll_consumes_the_report_once() {
    let mut p = platform(4);
    p.migration(HostId(1)).start();
    while p.poll().is_none() {
        p.step().expect("migration must finish before the simulation drains");
    }
    assert!(p.poll().is_none(), "the report slot drains on first read");
}
