//! TPCx-HS conformance: trace determinism across seeds, stable HSValidate
//! verdicts, the disaggregated-vs-colocated makespan ordering, injected
//! corruption and replica loss diagnosed precisely, and snapshot/restore
//! mid-HSSort finishing byte-identically with the same HSph@SF.

use mapreduce::prelude::*;
use simcore::rng::RootSeed;
use vcluster::spec::{ClusterSpec, Placement};
use vhadoop::prelude::*;
use workloads::tpcxhs::{
    hsgen_job, hssort_job, hsvalidate_job, hsvalidate_verdict, integrity_prescan,
    record_sort_checksums, register_hsgen, run_tpcxhs, HsCorruption, HsPlan, HsViolation, HS_OUT,
};

const REPLICATION: u32 = 2;

fn small_plan(seed: u64) -> HsPlan {
    HsPlan::new(200_000, 2, RootSeed(seed)).with_block_size(50_000)
}

fn small_cluster() -> ClusterSpec {
    ClusterSpec::builder().hosts(2).vms(8).placement(Placement::SingleDomain).build()
}

/// Runs the full pipeline on a traced `MrRuntime`; returns the report
/// and the exported Chrome trace.
fn traced_run(plan: &HsPlan) -> (workloads::tpcxhs::HsReport, String) {
    let mut rt = MrRuntime::new(small_cluster(), plan.hdfs_config(REPLICATION), plan.seed);
    rt.engine.tracer_mut().set_enabled(true);
    let rep = run_tpcxhs(&mut rt, plan);
    let trace = rt.engine.tracer().to_chrome_json();
    (rep, trace)
}

/// Re-running the same seed reproduces the trace byte for byte, for at
/// least four different seeds.
#[test]
fn trace_is_byte_identical_across_reruns_for_four_seeds() {
    for seed in [31u64, 32, 33, 34] {
        let plan = small_plan(seed);
        let (rep_a, trace_a) = traced_run(&plan);
        let (rep_b, trace_b) = traced_run(&plan);
        assert_eq!(trace_a, trace_b, "seed {seed}: trace diverged between identical runs");
        assert_eq!(rep_a.hsph, rep_b.hsph, "seed {seed}: figure of merit diverged");
        assert!(rep_a.validate.passed, "seed {seed}: {:?}", rep_a.validate.violations);
    }
}

/// The HSValidate verdict is a function of the data, not the seed: clean
/// runs pass and corrupted runs fail for every seed.
#[test]
fn validate_verdict_is_stable_across_seeds() {
    for seed in [41u64, 42, 43, 44] {
        let clean = small_plan(seed);
        let mut rt = MrRuntime::new(small_cluster(), clean.hdfs_config(REPLICATION), clean.seed);
        let rep = run_tpcxhs(&mut rt, &clean);
        assert!(rep.validate.passed, "seed {seed}: clean run failed {:?}", rep.validate.violations);
        assert_eq!(rep.records, clean.total_records());

        let bad = small_plan(seed).with_corruption(HsCorruption::FlipRecord { block: 0 });
        let mut rt = MrRuntime::new(small_cluster(), bad.hdfs_config(REPLICATION), bad.seed);
        let rep = run_tpcxhs(&mut rt, &bad);
        assert!(!rep.validate.passed, "seed {seed}: corruption went undetected");
    }
}

/// A flipped record between HSGen and HSSort is diagnosed as exactly an
/// input/output provenance mismatch: the output is still sorted and
/// count-preserving, so nothing else may fire.
#[test]
fn flipped_record_is_diagnosed_as_provenance_mismatch() {
    let plan = small_plan(7).with_corruption(HsCorruption::FlipRecord { block: 2 });
    let mut rt = MrRuntime::new(small_cluster(), plan.hdfs_config(REPLICATION), plan.seed);
    let rep = run_tpcxhs(&mut rt, &plan);
    assert!(!rep.validate.passed);
    assert_eq!(rep.validate.violations.len(), 1, "got {:?}", rep.validate.violations);
    assert!(
        matches!(rep.validate.violations[0], HsViolation::ChecksumMismatch { .. }),
        "got {:?}",
        rep.validate.violations
    );
    assert_eq!(rep.records, plan.total_records(), "corruption must not change the count");
}

/// A corrupted *stored* checksum (pristine data) is likewise pinned on
/// the provenance chain, not on the sort.
#[test]
fn flipped_stored_checksum_is_diagnosed_as_provenance_mismatch() {
    let plan = small_plan(7).with_corruption(HsCorruption::FlipChecksum { block: 1 });
    let mut rt = MrRuntime::new(small_cluster(), plan.hdfs_config(REPLICATION), plan.seed);
    let rep = run_tpcxhs(&mut rt, &plan);
    assert!(!rep.validate.passed);
    assert_eq!(rep.validate.violations.len(), 1, "got {:?}", rep.validate.violations);
    assert!(matches!(rep.validate.violations[0], HsViolation::ChecksumMismatch { .. }));
}

/// Dropping the only replica of an output block via the platform fault
/// driver makes HSValidate fail fast with a `LostBlocks` diagnosis
/// instead of crashing mid-read.
#[test]
fn replica_loss_is_diagnosed_as_lost_blocks() {
    let plan = small_plan(9);
    let mut p = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(small_cluster())
            .hdfs(plan.hdfs_config(1)) // replication 1: any loss is fatal
            .no_monitor()
            .seed(9)
            .build(),
    );
    let (spec, app, input) = hsgen_job(&plan);
    p.run_job(spec, app, input);
    register_hsgen(&mut p.rt, &plan);
    let (spec, app, input) = hssort_job(&plan);
    let sort = p.run_job(spec, app, input);
    record_sort_checksums(&mut p.rt, &sort);
    assert!(integrity_prescan(&p.rt).is_empty(), "healthy data must pass the prescan");

    // Crash a VM holding sorted output, through the fault driver.
    let victim =
        p.rt.hdfs
            .dir_block_locations(HS_OUT)
            .expect("sorted output exists")
            .iter()
            .find_map(|(_, len, reps)| (*len > 0).then(|| reps[0]))
            .expect("a non-empty output block");
    let at = p.now() + SimDuration::from_millis(1);
    p.install_fault_plan(&FaultPlan::new().at(at, FaultKind::NodeCrash { vm: victim.0 }));
    let mut crashed = false;
    while let Some((_, events)) = p.step() {
        crashed |= events.iter().any(|e| matches!(e, PlatformEvent::Fault(_)));
        if crashed {
            break;
        }
    }
    assert!(crashed, "the planned crash never fired");

    let pre = integrity_prescan(&p.rt);
    assert!(
        pre.iter().any(|v| matches!(v, HsViolation::LostBlocks { count } if *count > 0)),
        "got {pre:?}"
    );
    assert!(p.rt.hdfs.lost_blocks() > 0);
}

/// The Frankfurt layout comparison on a shuffle-heavy shape (8 reduces):
/// with NFS-backed shared storage every HDFS byte crosses the storage
/// path in both layouts, so the separated configuration's smaller
/// compute tier (4 trackers vs 8 — a quarter of the shuffle flows)
/// finishes the small-SF run *faster* than colocation. Deterministic for
/// a fixed seed, asserted for two.
#[test]
fn disaggregated_beats_colocated_on_small_shuffle_heavy_runs() {
    let run = |roles: NodeRoles, placement: Placement, seed: u64| {
        let plan = HsPlan::new(1_000_000, 8, RootSeed(seed)).with_block_size(100_000);
        let spec = ClusterSpec::builder().hosts(4).vms(9).placement(placement).build();
        let mut rt = MrRuntime::with_roles(spec, plan.hdfs_config(REPLICATION), roles, plan.seed);
        run_tpcxhs(&mut rt, &plan)
    };
    for seed in [5u64, 6] {
        let colo = run(NodeRoles::colocated(), Placement::CrossDomain, seed);
        let split = run(
            NodeRoles::separated((1..=4).map(VmId).collect(), (5..=8).map(VmId).collect()),
            Placement::Custom(vec![0, 0, 0, 1, 1, 2, 2, 3, 3]),
            seed,
        );
        assert!(colo.validate.passed && split.validate.passed);
        assert!(
            split.total_s < colo.total_s,
            "seed {seed}: separated ({:.2}s) must beat colocated ({:.2}s) at small SF",
            split.total_s,
            colo.total_s
        );
    }
}

/// Snapshot taken mid-HSSort, restored, and driven to completion:
/// byte-identical trace, identical sorted output, and the same HSph@SF
/// as the uninterrupted reference run.
#[test]
fn snapshot_mid_hssort_finishes_byte_identically() {
    let plan = small_plan(55);

    // Launch, run HSGen, register provenance, and submit HSSort.
    let launch_to_sort = || {
        let mut p = VHadoop::launch(
            PlatformConfig::builder()
                .cluster(small_cluster())
                .hdfs(plan.hdfs_config(REPLICATION))
                .no_monitor()
                .tracing(true)
                .seed(plan.seed.0)
                .build(),
        );
        let (spec, app, input) = hsgen_job(&plan);
        p.run_job(spec, app, input);
        register_hsgen(&mut p.rt, &plan);
        let (spec, app, input) = hssort_job(&plan);
        let id = p.rt.submit(spec, app, input);
        (p, id)
    };
    // Drive HSSort to completion, then validate; returns everything the
    // comparison needs.
    let finish = |mut p: VHadoop, id: JobId| {
        let mut sort: Option<JobResult> = None;
        let mut steps = 0usize;
        while let Some((_, events)) = p.step() {
            steps += 1;
            for ev in events {
                if let PlatformEvent::Job(JobEvent::JobDone(res)) = ev {
                    if res.id == id {
                        sort = Some(*res);
                    }
                }
            }
            if sort.is_some() {
                break;
            }
        }
        let sort = sort.expect("HSSort never finished");
        record_sort_checksums(&mut p.rt, &sort);
        assert!(integrity_prescan(&p.rt).is_empty());
        let (spec, app, input) = hsvalidate_job(&p.rt, &plan, &sort);
        let vres = p.run_job(spec, app, input);
        let verdict = hsvalidate_verdict(&p.rt, &plan, &vres);
        let total_s = p.now().as_secs_f64();
        let hsph = (plan.sf_bytes as f64 / 1e9) / (total_s / 3600.0);
        (sort.outputs, verdict, hsph, p.rt.engine.tracer().to_chrome_json(), steps)
    };

    let (reference, ref_id) = launch_to_sort();
    let (ref_out, ref_verdict, ref_hsph, ref_trace, total) = finish(reference, ref_id);
    assert!(ref_verdict.passed, "{:?}", ref_verdict.violations);

    // Checkpoint strictly mid-sort, restore, and replay.
    let (mut parent, id) = launch_to_sort();
    for _ in 0..total / 2 {
        assert!(parent.step().is_some(), "drained before the checkpoint");
    }
    let restored = VHadoop::restore(&parent.snapshot());
    let (out, verdict, hsph, trace, _) = finish(restored, id);
    assert_eq!(out, ref_out, "restored sort output diverged");
    assert_eq!(verdict, ref_verdict, "restored verdict diverged");
    assert_eq!(hsph, ref_hsph, "restored HSph@SF diverged");
    assert_eq!(trace, ref_trace, "restored trace diverged");
}
