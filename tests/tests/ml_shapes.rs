//! Reduced-scale shape and quality assertions for the parallel machine
//! learning experiments (Figs. 6–8).

use mlkit::prelude::*;
use simcore::rng::RootSeed;

#[test]
fn fig6_shape_fixed_data_bigger_cluster_costs_more() {
    let data = control_chart(RootSeed(5), 15, 60); // 90 × 60, fast
    for alg in Algorithm::FIG6 {
        let t = |vms: u32| {
            run_algorithm(alg, DatasetKind::ControlChart, data.points.clone(), vms, RootSeed(5))
                .stats
                .elapsed_s
        };
        let (t2, t8) = (t(2), t(8));
        assert!(
            t8 > t2,
            "{}: 8 VMs ({t8:.1}s) slower than 2 VMs ({t2:.1}s) on fixed data",
            alg.name()
        );
    }
}

#[test]
fn fig7_shape_light_workload_scales_smoothly() {
    let data = gaussian_mixture(RootSeed(6), 1);
    for alg in [Algorithm::KMeans, Algorithm::Canopy, Algorithm::MinHash] {
        let t = |vms: u32| {
            run_algorithm(alg, DatasetKind::Display, data.points.clone(), vms, RootSeed(6))
                .stats
                .elapsed_s
        };
        let (t2, t8) = (t(2), t(8));
        let growth = t8 / t2.max(1e-9);
        assert!(growth < 3.0, "{}: light workload grew {growth:.2}x from 2 to 8 VMs", alg.name());
    }
}

#[test]
fn clustering_quality_on_platform_matches_structure() {
    // k-means on the control chart: six generated classes; purity should
    // comfortably beat chance (1/6 ≈ 0.17) even at reduced size.
    let data = control_chart(RootSeed(7), 20, 60);
    let run = run_algorithm(
        Algorithm::KMeans,
        DatasetKind::ControlChart,
        data.points.clone(),
        4,
        RootSeed(7),
    );
    let model = run.model.expect("kmeans produces a model");
    let p = purity(&data.labels, &model.assignments);
    assert!(p > 0.5, "k-means purity {p:.2} on control chart");
}

#[test]
fn mr_and_reference_agree_on_the_platform() {
    // End-to-end check that running through the full simulated platform
    // does not perturb algorithm semantics.
    let data = gaussian_mixture(RootSeed(8), 1);
    let params = KMeansParams { k: 3, max_iters: 6, convergence: 0.01, ..Default::default() };
    let mut ml = MlRuntime::new(scaled_cluster(4), data.points.clone(), RootSeed(8));
    let (mr_model, _) = mlkit::kmeans::run_mr(&mut ml, params, RootSeed(9));
    let (ref_model, _) = mlkit::kmeans::reference(&data.points, params, RootSeed(9));
    for (a, b) in mr_model.centers.iter().zip(&ref_model.centers) {
        assert!(Distance::Euclidean.between(a, b) < 1e-6, "platform execution changed the model");
    }
}

#[test]
fn fig8_renderers_produce_output_for_all_algorithms() {
    let data = gaussian_mixture(RootSeed(10), 1);
    for alg in Algorithm::ALL {
        let run = run_algorithm(alg, DatasetKind::Display, data.points.clone(), 4, RootSeed(10));
        if let Some(model) = run.model {
            let svg =
                render_svg(alg.name(), &data.points, &model, &IterationTrail::new(), 320, 240);
            assert!(svg.contains("<svg") && svg.len() > 1000, "{} SVG renders", alg.name());
            let ascii = render_ascii(&data.points, &model, 40, 12);
            assert_eq!(ascii.lines().count(), 12);
        }
    }
}

#[test]
fn dirichlet_components_track_the_data() {
    // One tight blob: the finite-DP approximation may split it across
    // several near-identical components (a valid posterior mode), but
    // every *significant* component must sit on the blob.
    let blob: Vec<Vec<f64>> = (0..200)
        .map(|i| vec![5.0 + (i % 14) as f64 * 0.01, 5.0 + (i / 14) as f64 * 0.01])
        .collect();
    let (_, clustering) =
        mlkit::dirichlet::reference(&blob, DirichletParams::default(), RootSeed(11));
    assert!(clustering.k() <= 10, "bounded by k0, got {}", clustering.k());
    for c in &clustering.centers {
        let d = Distance::Euclidean.between(c, &[5.065, 5.07]);
        assert!(d < 0.5, "component center {c:?} drifted off the blob");
    }
}
