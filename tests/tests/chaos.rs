//! Chaos acceptance suite: a `FaultPlan` mixing every fault kind runs
//! end to end on the Fig. 2 wordcount — the job completes, no acknowledged
//! block is lost, every injected fault shows up as a trace span, and two
//! same-seed runs export byte-identical traces.

mod common;

use common::{assert_no_data_loss, launch_fig2, run_fig2, sorted_outputs, MB};
use vhadoop::prelude::*;

/// The acceptance plan: a straggler, a node crash, a slow shared disk, a
/// degraded host NIC, and a mid-pre-copy migration abort, all inside the
/// first ten simulated seconds of the job.
fn acceptance_plan() -> FaultPlan {
    FaultPlan::new()
        .at(
            SimTime::from_secs(3),
            FaultKind::StragglerVm { vm: 3, factor: 0.3, duration: SimDuration::from_secs(2) },
        )
        .at(SimTime::from_secs(4), FaultKind::NodeCrash { vm: 5 })
        .at(
            SimTime::from_secs(5),
            FaultKind::SlowDisk { factor: 0.5, duration: SimDuration::from_secs(1) },
        )
        .at(
            SimTime::from_secs(6),
            FaultKind::LinkDegrade { host: 0, factor: 0.4, duration: SimDuration::from_secs(1) },
        )
        .at(SimTime::from_secs(7), FaultKind::MigrationAbort)
}

/// Runs the full acceptance scenario — faulted Fig. 2 wordcount with a
/// whole-cluster migration in flight so the abort has a victim — and
/// returns the job outputs, the trace, and the migration report.
fn acceptance_run(seed: u64) -> (Vec<(String, i64)>, String, ClusterMigrationReport, Vec<usize>) {
    let bytes = 16 * MB;
    let mut p = launch_fig2(bytes, seed, acceptance_plan());
    let (spec, app, input) = common::fig2_job(&mut p, bytes, seed);
    // Start migrating every VM to host 1 two seconds in: the first VMs are
    // mid-pre-copy when the abort fires at t = 7 s.
    let (report, result) =
        p.migration(HostId(1)).after(SimDuration::from_secs(2)).during_job(spec, app, input);
    while p.step().is_some() {}
    assert_no_data_loss(&p);
    let lost: Vec<usize> = p.fault_log().iter().map(|f| f.lost_blocks).collect();
    let trace = p.rt.engine.tracer().to_chrome_json();
    (sorted_outputs(&result), trace, report, lost)
}

#[test]
fn faulted_fig2_completes_and_replays_byte_identically() {
    let (outputs, trace, report, lost) = acceptance_run(2012);

    // The job survived all five faults with the fault-free payload.
    let (clean, _, _) = run_fig2(16 * MB, 2012, FaultPlan::new());
    assert_eq!(outputs, sorted_outputs(&clean), "faults must not change job output");
    assert!(!outputs.is_empty());
    assert!(lost.iter().all(|&l| l == 0), "no acknowledged block may be lost");

    // Every fault kind left its span in the exported trace.
    assert!(trace.contains("\"cat\":\"fault\""), "fault spans missing from trace");
    for name in ["straggler_vm", "node_crash", "slow_disk", "link_degrade", "migration_abort"] {
        assert!(trace.contains(&format!("\"name\":\"{name}\"")), "missing {name} span");
    }
    // The crash was detected as a tracker timeout too.
    assert!(trace.contains("\"name\":\"tracker_timeout\""));

    // The abort found a migration in flight and that VM retried through:
    // every VM still reached host 1, at least one surviving an abort.
    assert_eq!(report.per_vm.len(), 16);
    assert!(report.per_vm.iter().any(|v| v.aborts >= 1), "the abort had no victim");

    // Determinism contract: the identical scenario replays byte-for-byte.
    let (outputs2, trace2, _, _) = acceptance_run(2012);
    assert_eq!(outputs, outputs2);
    assert_eq!(trace, trace2, "same seed + same plan must replay byte-identically");
}

#[test]
fn fault_log_records_what_was_injected() {
    let (_, _, p) = run_fig2(
        8 * MB,
        7,
        FaultPlan::new().at(SimTime::from_secs(2), FaultKind::NodeCrash { vm: 4 }).at(
            SimTime::from_secs(3),
            FaultKind::SlowDisk { factor: 0.5, duration: SimDuration::from_secs(1) },
        ),
    );
    let log = p.fault_log();
    assert_eq!(log.len(), 2);
    assert_eq!(log[0].kind, FaultKind::NodeCrash { vm: 4 });
    assert_eq!(log[0].at, SimTime::from_secs(2));
    assert!(log[0].effective);
    assert!(matches!(log[1].kind, FaultKind::SlowDisk { .. }));
    assert!(log[1].effective);
    // PlatformConfig carried the plan; the events fired in time order.
    assert!(log[0].at <= log[1].at);
}

#[test]
fn crashed_node_can_rejoin_and_serve_again() {
    let bytes = 6 * MB;
    let plan = FaultPlan::new()
        .at(SimTime::from_secs(2), FaultKind::NodeCrash { vm: 2 })
        .at(SimTime::from_secs(6), FaultKind::NodeRejoin { vm: 2 });
    let mut p = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(ClusterSpec::builder().hosts(2).vms(6).build())
            .hdfs(HdfsConfig { block_size: MB, replication: 3 })
            .no_monitor()
            .tracing(true)
            .faults(plan)
            .seed(11)
            .build(),
    );
    let (spec, app, input) = common::fig2_job(&mut p, bytes, 11);
    let result = p.run_job(spec, app, input);
    while p.step().is_some() {}

    assert!(result.counters.reduce_output_records > 0);
    assert_no_data_loss(&p);
    let log = p.fault_log();
    assert_eq!(log.len(), 2);
    assert!(log.iter().all(|f| f.effective), "both crash and rejoin must apply");
    // The VM is back in both subsystems.
    assert!(p.rt.hdfs.datanodes().contains(&VmId(2)), "datanode did not rejoin");
    assert!(p.rt.mr.trackers().contains(&VmId(2)), "tracker did not rejoin");
    let trace = p.rt.engine.tracer().to_chrome_json();
    assert!(trace.contains("\"name\":\"node_rejoin\""));
}

#[test]
fn migration_abort_without_migration_is_a_recorded_noop() {
    let mut p = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(ClusterSpec::builder().hosts(2).vms(4).build())
            .no_monitor()
            .faults(FaultPlan::new().at(SimTime::from_secs(1), FaultKind::MigrationAbort))
            .build(),
    );
    while p.step().is_some() {}
    let log = p.fault_log();
    assert_eq!(log.len(), 1);
    assert!(!log[0].effective, "nothing was migrating, so the abort must be a no-op");
    assert!(!p.migration_busy());
}

#[test]
fn plans_can_be_installed_mid_run() {
    let mut p = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(ClusterSpec::builder().hosts(2).vms(6).build())
            .no_monitor()
            .seed(5)
            .build(),
    );
    p.upload_input("/mid", 2 * MB, VmId(1));
    // Install after launch, with an instant already in the past: it still
    // fires (clamped to now) on the next wakeup.
    p.install_fault_plan(&FaultPlan::new().at(SimTime::ZERO, FaultKind::NodeCrash { vm: 3 }));
    while p.step().is_some() {}
    assert_eq!(p.fault_log().len(), 1);
    assert!(p.fault_log()[0].effective);
    assert!(!p.rt.mr.trackers().contains(&VmId(3)));
}
