//! The `#[deprecated]` migration entry points must stay exact synonyms of
//! the `migration(dst)` session calls they forward to: same reports, same
//! job results, on identically configured platforms.

#![allow(deprecated)]

mod common;

use common::{fig2_job, MB};
use vhadoop::prelude::*;

fn platform(seed: u64) -> VHadoop {
    VHadoop::launch(
        PlatformConfig::builder()
            .cluster(
                ClusterSpec::builder().hosts(2).vms(4).placement(Placement::SingleDomain).build(),
            )
            .no_monitor()
            .seed(seed)
            .build(),
    )
}

#[test]
fn migrate_cluster_equals_idle_session() {
    let shim = platform(1).migrate_cluster(HostId(1));
    let session = platform(1).migration(HostId(1)).idle();
    assert_eq!(shim, session);
    assert_eq!(shim.per_vm.len(), 4);
}

#[test]
fn migrate_during_job_equals_after_during_job_session() {
    let bytes = 3 * MB;
    let delay = SimDuration::from_secs(1);

    let mut a = platform(2);
    let (spec, app, input) = fig2_job(&mut a, bytes, 2);
    let (shim_rep, shim_res) = a.migrate_during_job(spec, app, input, HostId(1), delay);

    let mut b = platform(2);
    let (spec, app, input) = fig2_job(&mut b, bytes, 2);
    let (sess_rep, sess_res) = b.migration(HostId(1)).after(delay).during_job(spec, app, input);

    assert_eq!(shim_rep, sess_rep);
    assert_eq!(common::sorted_outputs(&shim_res), common::sorted_outputs(&sess_res));
    assert_eq!(shim_res.counters.launched_maps, sess_res.counters.launched_maps);
}

#[test]
fn start_migration_equals_session_start() {
    let drive = |p: &mut VHadoop| loop {
        if let Some(rep) = p.poll() {
            return rep;
        }
        p.step().expect("migration must finish before the simulation drains");
    };

    let mut a = platform(3);
    a.start_migration(HostId(1));
    assert!(a.migration_busy());
    let shim = drive(&mut a);

    let mut b = platform(3);
    b.migration(HostId(1)).start();
    let session = drive(&mut b);

    assert_eq!(shim, session);
}

#[test]
fn take_migration_report_equals_poll() {
    let mut a = platform(4);
    a.start_migration(HostId(1));
    while a.take_migration_report().is_none() {
        a.step().expect("migration must finish before the simulation drains");
    }
    // Consumed — both accessors drain the same slot.
    assert!(a.poll().is_none());
    assert!(a.take_migration_report().is_none());

    let mut b = platform(4);
    b.migration(HostId(1)).start();
    while b.poll().is_none() {
        b.step().expect("migration must finish before the simulation drains");
    }
    assert!(b.take_migration_report().is_none());
}

#[test]
fn migrate_cluster_under_load_equals_under_load_session() {
    fn submit(count: &mut u32) -> impl FnMut(&mut mapreduce::runtime::MrRuntime) -> bool + '_ {
        move |rt| {
            if *count == 0 {
                return false;
            }
            *count -= 1;
            let run = *count;
            workloads::wordcount::submit_wordcount(rt, run, MB, JobConfig::default(), RootSeed(9));
            true
        }
    }

    let mut a = platform(5);
    let mut ca = 3u32;
    let (shim_rep, shim_jobs) = a.migrate_cluster_under_load(HostId(1), submit(&mut ca));

    let mut b = platform(5);
    let mut cb = 3u32;
    let (sess_rep, sess_jobs) = b.migration(HostId(1)).under_load(submit(&mut cb));

    assert_eq!(shim_rep, sess_rep);
    assert_eq!(shim_jobs.len(), sess_jobs.len());
    for (x, y) in shim_jobs.iter().zip(&sess_jobs) {
        assert_eq!(common::sorted_outputs(x), common::sorted_outputs(y));
    }
}
