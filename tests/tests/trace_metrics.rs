//! The structured tracing layer end to end: byte-identical traces across
//! same-seed runs (the determinism contract), span coverage of the Fig. 2
//! workload, and agreement between task spans and the nmon monitor.

use vhadoop::prelude::*;
use workloads::textgen::TextCorpus;
use workloads::wordcount::{run_wordcount_traced, WordCountApp};

const MB: u64 = 1 << 20;

/// The Fig. 2 16 MB "normal" point, traced — same cluster, job config,
/// HDFS geometry, and seed as `fig2_wordcount`.
fn fig2_trace() -> String {
    let spec = ClusterSpec::builder().hosts(2).vms(16).placement(Placement::SingleDomain).build();
    let cfg = JobConfig::default().with_combiner(false).with_reduces(4);
    let hdfs = HdfsConfig { block_size: (16 * MB / 15).max(MB), replication: 3 };
    let (rep, trace) = run_wordcount_traced(spec, 16 * MB, cfg, hdfs, RootSeed(2012));
    assert!(rep.elapsed_s > 1.0);
    trace
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let (a, b) = (fig2_trace(), fig2_trace());
    assert!(!a.is_empty());
    assert_eq!(a, b, "identical config + seed must produce a byte-identical trace");
}

#[test]
fn fig2_trace_covers_the_pipeline() {
    let trace = fig2_trace();
    // Chrome trace_event envelope.
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.ends_with("],\"displayTimeUnit\":\"ms\"}\n"));
    // Every stage of the MapReduce pipeline left complete ("X") spans.
    for cat in ["map", "shuffle", "reduce", "hdfs"] {
        assert!(trace.contains(&format!("\"cat\":\"{cat}\"")), "missing {cat} spans");
    }
    assert!(trace.contains("\"ph\":\"X\""));
}

#[test]
fn tracing_disabled_records_nothing() {
    let mut p = VHadoop::launch(
        PlatformConfig::builder().cluster(ClusterSpec::builder().hosts(2).vms(4).build()).build(),
    );
    p.upload_input("/in", 4 * MB, VmId(1));
    assert!(p.rt.engine.tracer().is_empty(), "tracing is strictly opt-in");
    assert_eq!(p.metrics().spans, 0);
}

/// Runs a traced + monitored wordcount and checks the two observability
/// channels agree: whenever the monitor samples nonzero VCPU utilization
/// on a worker VM, that instant lies inside the union of task/IO spans
/// recorded on the same VM's track. (Sound with speculation off and no
/// failures — every busy VCPU belongs to exactly one running attempt.)
#[test]
fn monitor_samples_agree_with_spans() {
    let mut p = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(ClusterSpec::builder().hosts(2).vms(6).build())
            // Small blocks spread maps across all workers; fast sampling
            // catches them mid-task.
            .hdfs(HdfsConfig { block_size: MB, replication: 2 })
            .monitor_interval(SimDuration::from_millis(200))
            .tracing(true)
            .seed(13)
            .build(),
    );
    let bytes = 8 * MB;
    p.register_input("/agree", bytes, VmId(1));
    let blocks = p.rt.hdfs.stat("/agree").expect("registered").blocks.len();
    let block_size = p.rt.hdfs.config().block_size;
    let corpus = TextCorpus::english_like(RootSeed(14));
    let last = blocks - 1;
    let input = GeneratorInput::new(blocks, block_size, move |idx| {
        let b = if idx == last { bytes - last as u64 * block_size } else { block_size };
        corpus.split_records(idx, b)
    });
    let spec = JobSpec::new("wc", "/agree", "/agree-out");
    let result = p.run_job(spec, Box::new(WordCountApp), Box::new(input));
    assert!(result.counters.reduce_output_records > 0);

    let tracer = p.rt.engine.tracer();
    let monitor = p.monitor().expect("monitoring enabled");
    let mut checked = 0usize;
    for (col, column) in monitor.columns().iter().enumerate() {
        let Some(vm) = column
            .name
            .strip_prefix("vm")
            .and_then(|rest| rest.strip_suffix(".vcpu"))
            .and_then(|n| n.parse::<u32>().ok())
        else {
            continue;
        };
        for (t, util) in monitor.series(col) {
            if util <= 1e-9 {
                continue;
            }
            checked += 1;
            assert!(
                tracer.spans().iter().any(|s| s.track == vm && s.start <= t && t <= s.end),
                "vm{vm} busy at {t} ({util:.2} vcpu) outside every recorded span"
            );
        }
    }
    assert!(checked > 10, "the monitor caught VMs mid-task ({checked} busy samples)");

    // The monitor's samples were also re-emitted as trace counters.
    let samples = monitor.samples().len();
    let columns = monitor.columns().len();
    assert_eq!(tracer.counters().len(), samples * columns);
}

#[test]
fn job_metrics_filter_to_one_job() {
    let mut p = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(ClusterSpec::builder().hosts(2).vms(4).build())
            .tracing(true)
            .build(),
    );
    let bytes = 2 * MB;
    p.register_input("/jm", bytes, VmId(1));
    let blocks = p.rt.hdfs.stat("/jm").expect("registered").blocks.len();
    let block_size = p.rt.hdfs.config().block_size;
    let corpus = TextCorpus::english_like(RootSeed(15));
    let last = blocks - 1;
    let input = GeneratorInput::new(blocks, block_size, move |idx| {
        let b = if idx == last { bytes - last as u64 * block_size } else { block_size };
        corpus.split_records(idx, b)
    });
    let spec = JobSpec::new("wc", "/jm", "/jm-out");
    let result = p.run_job(spec, Box::new(WordCountApp), Box::new(input));

    let all = p.metrics();
    let job = p.job_metrics(&result);
    assert!(all.category("hdfs").is_some(), "block writes traced");
    assert!(job.category("hdfs").is_none(), "hdfs spans carry no job id");
    let maps = job.category("map").expect("map spans traced");
    assert_eq!(maps.count as u64, result.counters.launched_maps, "one span per map");
    assert!(job.spans <= all.spans);
    assert!(all.to_text().contains("category"));
}
