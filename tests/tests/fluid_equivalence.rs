//! Property test: the incremental component-partitioned fluid solver is
//! *bit-identical* to the former global progressive-filling pass.
//!
//! The `oracle` module below is a faithful transcription of the
//! pre-incremental `FluidNet` (global re-solve on every reallocation, full
//! scan in `earliest_completion`). Each case drives an identical random
//! churn script — flow add/remove, capacity changes, time advances,
//! completion harvests — through both implementations and asserts exact
//! `f64::to_bits` equality of every rate, remaining-work value,
//! per-resource `used`/`cumulative`, and every completion instant. This is
//! the contract that keeps the nanosecond-pinned golden traces
//! (`scheduler_golden`, `seed_sweep`) valid across the solver rewrite.
//!
//! The same contract extends to the worker pool
//! (`solver_threads_are_unobservable`): thread count is a performance knob,
//! never an observable one.

use proptest::{check, Config};
use simcore::fluid::{Demand, FluidNet, ResourceKind};
use simcore::ids::ResourceId;
use simcore::time::SimDuration;

/// Verbatim port of the pre-incremental solver (identical arithmetic and
/// iteration order), with resources as plain indices.
mod oracle {
    use simcore::time::{SimDuration, SimTime};

    const RATE_CAP: f64 = 1e18;
    const DONE_EPS: f64 = 1e-6;

    struct OFlow {
        demands: Vec<(usize, f64)>,
        total: f64,
        remaining: f64,
        rate: f64,
    }

    pub struct Oracle {
        capacity: Vec<f64>,
        pub used: Vec<f64>,
        pub cumulative: Vec<f64>,
        slots: Vec<Option<OFlow>>,
        free: Vec<u32>,
        active: usize,
        pub last_update: SimTime,
    }

    impl Oracle {
        pub fn new(caps: &[f64]) -> Self {
            Oracle {
                capacity: caps.to_vec(),
                used: vec![0.0; caps.len()],
                cumulative: vec![0.0; caps.len()],
                slots: Vec::new(),
                free: Vec::new(),
                active: 0,
                last_update: SimTime::ZERO,
            }
        }

        pub fn set_capacity(&mut self, r: usize, capacity: f64) {
            self.capacity[r] = capacity;
        }

        /// Returns the slot index (mirrors the kernel's LIFO free list, so
        /// slot assignment — and with it reallocation iteration order —
        /// matches the real net exactly).
        pub fn add_flow(&mut self, demands: Vec<(usize, f64)>, work: f64) -> usize {
            let state = OFlow { demands, total: work, remaining: work, rate: 0.0 };
            let slot = match self.free.pop() {
                Some(s) => {
                    self.slots[s as usize] = Some(state);
                    s as usize
                }
                None => {
                    self.slots.push(Some(state));
                    self.slots.len() - 1
                }
            };
            self.active += 1;
            slot
        }

        pub fn remove_flow(&mut self, slot: usize) -> f64 {
            let state = self.slots[slot].take().expect("live oracle flow");
            self.free.push(slot as u32);
            self.active -= 1;
            state.remaining
        }

        pub fn rate(&self, slot: usize) -> f64 {
            self.slots[slot].as_ref().map_or(0.0, |f| f.rate)
        }

        pub fn remaining(&self, slot: usize) -> Option<f64> {
            self.slots[slot].as_ref().map(|f| f.remaining)
        }

        pub fn advance_to(&mut self, now: SimTime) {
            assert!(now >= self.last_update);
            if now == self.last_update {
                return;
            }
            let dt = (now - self.last_update).as_secs_f64();
            for slot in &mut self.slots {
                if let Some(f) = slot.as_mut() {
                    if f.rate > 0.0 {
                        f.remaining = (f.remaining - f.rate * dt).max(0.0);
                        for &(r, w) in &f.demands {
                            self.cumulative[r] += f.rate * w * dt;
                        }
                    }
                }
            }
            self.last_update = now;
        }

        pub fn reallocate(&mut self) {
            for u in &mut self.used {
                *u = 0.0;
            }
            if self.active == 0 {
                return;
            }
            let mut residual: Vec<f64> = self.capacity.clone();
            let mut weight: Vec<f64> = vec![0.0; self.capacity.len()];
            let mut count: Vec<u32> = vec![0; self.capacity.len()];
            let mut unfrozen: Vec<u32> = Vec::with_capacity(self.active);
            for (i, slot) in self.slots.iter().enumerate() {
                if let Some(f) = slot {
                    unfrozen.push(i as u32);
                    for &(r, w) in &f.demands {
                        weight[r] += w;
                        count[r] += 1;
                    }
                }
            }
            while !unfrozen.is_empty() {
                let mut share = f64::INFINITY;
                for r in 0..residual.len() {
                    if count[r] > 0 && weight[r] > 0.0 {
                        let s = residual[r] / weight[r];
                        if s < share {
                            share = s;
                        }
                    }
                }
                let share = share.clamp(0.0, RATE_CAP);
                let tol = share * 1e-12 + 1e-30;
                let mut saturated = vec![false; self.capacity.len()];
                let mut any_saturated = false;
                if share < RATE_CAP {
                    for (r, sat) in saturated.iter_mut().enumerate() {
                        if count[r] > 0 && weight[r] > 0.0 && residual[r] / weight[r] <= share + tol
                        {
                            *sat = true;
                            any_saturated = true;
                        }
                    }
                }
                let mut still: Vec<u32> = Vec::new();
                for &slot_idx in &unfrozen {
                    let f = self.slots[slot_idx as usize].as_mut().expect("live");
                    let frozen_now = !any_saturated || f.demands.iter().any(|&(r, _)| saturated[r]);
                    if frozen_now {
                        f.rate = share;
                        for &(r, w) in &f.demands {
                            residual[r] = (residual[r] - share * w).max(0.0);
                            weight[r] -= w;
                            count[r] -= 1;
                            if count[r] == 0 {
                                weight[r] = 0.0;
                            }
                            self.used[r] += share * w;
                        }
                    } else {
                        still.push(slot_idx);
                    }
                }
                assert!(still.len() < unfrozen.len(), "oracle filling stalled");
                unfrozen = still;
            }
        }

        pub fn earliest_completion(&self) -> Option<SimTime> {
            let mut best: Option<f64> = None;
            for f in self.slots.iter().flatten() {
                if f.remaining <= DONE_EPS {
                    return Some(self.last_update);
                }
                if f.rate > 0.0 {
                    let t = f.remaining / f.rate;
                    best = Some(best.map_or(t, |b: f64| b.min(t)));
                }
            }
            best.map(|secs| {
                let d = SimDuration::from_secs_f64(secs).saturating_add(SimDuration::from_nanos(1));
                self.last_update + d
            })
        }

        /// Finished slots, ascending (the kernel scans in the same order).
        pub fn take_finished(&mut self) -> Vec<usize> {
            let mut done = Vec::new();
            for i in 0..self.slots.len() {
                let finished = match &self.slots[i] {
                    Some(f) => f.remaining <= DONE_EPS.max(f.total * 1e-12),
                    None => false,
                };
                if finished {
                    self.slots[i] = None;
                    self.free.push(i as u32);
                    self.active -= 1;
                    done.push(i);
                }
            }
            done
        }
    }
}

/// Discrete capacity/weight pools: plenty of *exact* cross-component ties
/// (which must still re-solve identically), none of the measure-zero
/// almost-but-not-quite ties within the solver's 1e-12 saturation tolerance
/// that real workloads cannot produce either.
const CAPS: [f64; 6] = [10.0, 25.0, 50.0, 100.0, 400.0, f64::INFINITY];
const WEIGHTS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];

fn assert_state_identical(
    net: &mut FluidNet,
    ora: &oracle::Oracle,
    live: &[(simcore::ids::FlowId, usize)],
    n_res: usize,
) {
    for &(id, os) in live {
        assert_eq!(
            net.flow_rate(id).to_bits(),
            ora.rate(os).to_bits(),
            "rate mismatch on slot {os}: {} vs {}",
            net.flow_rate(id),
            ora.rate(os)
        );
        assert_eq!(
            net.flow_remaining(id).map(f64::to_bits),
            ora.remaining(os).map(f64::to_bits),
            "remaining mismatch on slot {os}"
        );
    }
    for r in 0..n_res {
        let rid = ResourceId::from_index(r);
        assert_eq!(net.used(rid).to_bits(), ora.used[r].to_bits(), "used mismatch on r{r}");
        assert_eq!(
            net.cumulative(rid).to_bits(),
            ora.cumulative[r].to_bits(),
            "cumulative mismatch on r{r}"
        );
    }
    assert_eq!(net.now(), ora.last_update);
    assert_eq!(net.earliest_completion(), ora.earliest_completion(), "completion instant");
}

#[test]
fn fluid_incremental_equivalence() {
    check("fluid_incremental_equivalence", Config { cases: 24, seed: 0xF1D0 }, |g| {
        let n_res = g.usize_in(1, 6);
        let caps: Vec<f64> = (0..n_res).map(|_| *g.choose(&CAPS)).collect();
        let mut net = FluidNet::new();
        for (i, &c) in caps.iter().enumerate() {
            net.add_resource(format!("r{i}"), ResourceKind::Other, c);
        }
        let mut ora = oracle::Oracle::new(&caps);
        // Live flows as (kernel handle, oracle slot). Slot indices coincide
        // by construction (mirrored LIFO free lists), which the add path
        // below asserts via the handle's Display form.
        let mut live: Vec<(simcore::ids::FlowId, usize)> = Vec::new();

        let steps = g.usize_in(20, 60);
        for _ in 0..steps {
            match g.usize_in(0, 9) {
                // Add a flow (weighted, multi-resource, occasionally empty
                // work so the near-done path is exercised).
                0..=3 => {
                    let nd = g.usize_in(1, n_res.min(3));
                    let mut picked: Vec<usize> = Vec::new();
                    while picked.len() < nd {
                        let r = g.usize_in(0, n_res - 1);
                        if !picked.contains(&r) {
                            picked.push(r);
                        }
                    }
                    let demands: Vec<(usize, f64)> =
                        picked.iter().map(|&r| (r, *g.choose(&WEIGHTS))).collect();
                    let work = if g.bool(0.05) { 0.0 } else { g.f64_in(1.0, 500.0) };
                    let id = net.add_flow(
                        demands
                            .iter()
                            .map(|&(r, w)| Demand::weighted(ResourceId::from_index(r), w))
                            .collect(),
                        work,
                    );
                    let os = ora.add_flow(demands, work);
                    assert_eq!(format!("{id}").split('.').next(), Some(&*format!("f{os}")));
                    live.push((id, os));
                }
                // Remove a random live flow.
                4..=5 if !live.is_empty() => {
                    let k = g.usize_in(0, live.len() - 1);
                    let (id, os) = live.swap_remove(k);
                    let a = net.remove_flow(id).expect("live handle");
                    let b = ora.remove_flow(os);
                    assert_eq!(a.to_bits(), b.to_bits(), "remaining at cancel");
                }
                // Change a capacity (occasionally to zero: stalled flows).
                6 => {
                    let r = g.usize_in(0, n_res - 1);
                    let c = if g.bool(0.1) { 0.0 } else { *g.choose(&CAPS) };
                    net.set_capacity(ResourceId::from_index(r), c);
                    ora.set_capacity(r, c);
                }
                // Advance time — to the projected completion instant, or a
                // random intermediate point — and harvest finishers.
                _ => {
                    let target = match ora.earliest_completion() {
                        Some(t) if g.bool(0.7) => t,
                        _ => ora.last_update + SimDuration::from_nanos(g.u64_in(1, 4_000_000_000)),
                    };
                    net.advance_to(target);
                    ora.advance_to(target);
                    let fin_new = net.take_finished();
                    let fin_old = ora.take_finished();
                    assert_eq!(fin_new.len(), fin_old.len(), "finished count");
                    live.retain(|&(id, os)| {
                        let gone = fin_old.contains(&os);
                        assert_eq!(!net.is_live(id), gone, "finish disagreement on slot {os}");
                        !gone
                    });
                }
            }
            net.reallocate();
            ora.reallocate();
            assert_state_identical(&mut net, &ora, &live, n_res);
        }
    });
}

/// The parallel component re-solve must be unobservable: for any churn
/// script, running the identical script with the worker pool at 1, 2, and
/// 8 threads yields `f64::to_bits`-identical rates, remaining work,
/// per-resource `used`/`cumulative`, identical completion instants, and
/// identical work counters (`components_solved_parallel` excepted — it is
/// the one deliberately thread-dependent statistic).
///
/// Cases build two independent resource banks with > `PAR_MIN_CLOSURE`
/// flows so the initial reallocation genuinely engages the pool (small
/// closures are solved inline regardless of the knob).
#[test]
fn solver_threads_are_unobservable() {
    check("solver_threads_are_unobservable", Config { cases: 4, seed: 0xF1D2 }, |g| {
        let n_res = g.usize_in(4, 8);
        let caps: Vec<f64> = (0..n_res).map(|_| *g.choose(&CAPS)).collect();
        let base_flows = g.usize_in(1100, 1400);
        let run = |threads: usize, g: &mut proptest::Gen| {
            let mut net = FluidNet::new();
            net.set_threads(threads);
            for (i, &c) in caps.iter().enumerate() {
                net.add_resource(format!("r{i}"), ResourceKind::Other, c);
            }
            let mut live = Vec::new();
            // A wide first wave so the dirty closure crosses the parallel
            // threshold, spread over every resource (several components).
            for k in 0..base_flows {
                let r = k % n_res;
                let w = *g.choose(&WEIGHTS);
                let id = net.add_flow(
                    vec![Demand::weighted(ResourceId::from_index(r), w)],
                    g.f64_in(50.0, 500.0),
                );
                live.push(id);
            }
            let mut out: Vec<u64> = Vec::new();
            for _ in 0..12 {
                match g.usize_in(0, 4) {
                    0 => {
                        let r = g.usize_in(0, n_res - 1);
                        let w = *g.choose(&WEIGHTS);
                        live.push(net.add_flow(
                            vec![Demand::weighted(ResourceId::from_index(r), w)],
                            g.f64_in(1.0, 200.0),
                        ));
                    }
                    1 if !live.is_empty() => {
                        let k = g.usize_in(0, live.len() - 1);
                        net.remove_flow(live.swap_remove(k));
                    }
                    2 => {
                        let r = g.usize_in(0, n_res - 1);
                        net.set_capacity(ResourceId::from_index(r), *g.choose(&CAPS));
                    }
                    _ => {
                        net.reallocate();
                        if let Some(t) = net.earliest_completion() {
                            net.advance_to(t);
                            for f in net.take_finished() {
                                live.retain(|&id| id != f.id);
                            }
                        }
                    }
                }
                net.reallocate();
                for &id in &live {
                    out.push(net.flow_rate(id).to_bits());
                    out.push(net.flow_remaining(id).map_or(u64::MAX, f64::to_bits));
                }
                for r in 0..n_res {
                    let rid = ResourceId::from_index(r);
                    out.push(net.used(rid).to_bits());
                    out.push(net.cumulative(rid).to_bits());
                }
                out.push(net.now().as_nanos());
                out.push(net.earliest_completion().map_or(u64::MAX, |t| t.as_nanos()));
            }
            // Thread-independent counters travel with the trace; the one
            // thread-dependent statistic is compared separately below.
            let s = net.stats();
            out.extend([
                s.reallocations,
                s.flows_touched,
                s.resources_touched,
                s.batch_applied,
                s.comp_size_p50,
                s.comp_size_p99,
                s.comp_size_max,
                s.completion_heap_len as u64,
            ]);
            (out, s.components_solved_parallel)
        };
        let mut g2 = g.clone();
        let mut g8 = g.clone();
        let (seq, par_seq) = run(1, g);
        let (two, _) = run(2, &mut g2);
        let (eight, par_eight) = run(8, &mut g8);
        assert_eq!(seq, two, "threads=2 diverged from sequential");
        assert_eq!(seq, eight, "threads=8 diverged from sequential");
        assert_eq!(par_seq, 0, "sequential run must never use the pool");
        assert!(par_eight > 0, "wide closure must engage the pool at 8 threads");
    });
}

/// Flow-arena free-list ABA regression through the public handle API: a
/// handle kept past its flow's removal must stay dead after the slot is
/// recycled, and must not bleed state into (or observe state of) the
/// reborn flow.
#[test]
fn flow_arena_recycling_rejects_stale_handles() {
    let mut net = FluidNet::new();
    let r = net.add_resource("link", ResourceKind::Net, 100.0);
    let stale = net.add_flow(vec![Demand::unit(r)], 1_000.0);
    net.reallocate();
    assert_eq!(net.remove_flow(stale), Some(1_000.0));
    // The LIFO free list recycles the same slot for the next flow.
    let reborn = net.add_flow(vec![Demand::unit(r)], 70.0);
    net.reallocate();
    assert!(!net.is_live(stale), "stale handle stays dead across recycling");
    assert!(net.is_live(reborn));
    assert_eq!(net.remove_flow(stale), None, "stale removal is a no-op");
    assert_eq!(net.flow_rate(stale), 0.0);
    assert!(net.is_live(reborn), "stale operations must not touch the reborn flow");
    assert_eq!(net.flow_rate(reborn), 100.0);
    // The reborn flow's lifecycle is unperturbed: it completes at its own
    // work/rate, not the stale flow's.
    let t = net.earliest_completion().expect("completion scheduled");
    net.advance_to(t);
    let fin = net.take_finished();
    assert_eq!(fin.len(), 1);
    assert_eq!(fin[0].id, reborn);
}

/// The `full_solve` baseline knob (used by `simbench` as the "before"
/// measurement) must also be bit-identical to the incremental path — it
/// runs the same restricted solve with every resource seeded.
#[test]
fn full_solve_knob_is_equivalent() {
    check("full_solve_knob_is_equivalent", Config { cases: 8, seed: 0xF1D1 }, |g| {
        let n_res = g.usize_in(2, 5);
        let caps: Vec<f64> = (0..n_res).map(|_| *g.choose(&CAPS)).collect();
        let run = |full: bool, g: &mut proptest::Gen| {
            let mut net = FluidNet::new();
            net.set_full_solve(full);
            for (i, &c) in caps.iter().enumerate() {
                net.add_resource(format!("r{i}"), ResourceKind::Other, c);
            }
            let mut out: Vec<u64> = Vec::new();
            let mut live = Vec::new();
            for _ in 0..30 {
                match g.usize_in(0, 5) {
                    0..=2 => {
                        let r = g.usize_in(0, n_res - 1);
                        let w = *g.choose(&WEIGHTS);
                        let id = net.add_flow(
                            vec![Demand::weighted(ResourceId::from_index(r), w)],
                            g.f64_in(1.0, 200.0),
                        );
                        live.push(id);
                    }
                    3 if !live.is_empty() => {
                        let k = g.usize_in(0, live.len() - 1);
                        let id = live.swap_remove(k);
                        net.remove_flow(id);
                    }
                    _ => {
                        net.reallocate();
                        if let Some(t) = net.earliest_completion() {
                            net.advance_to(t);
                            for f in net.take_finished() {
                                live.retain(|&id| id != f.id);
                            }
                        }
                    }
                }
                net.reallocate();
                for &id in &live {
                    out.push(net.flow_rate(id).to_bits());
                }
                out.push(net.now().as_nanos());
            }
            out
        };
        let mut g2 = g.clone();
        assert_eq!(run(false, g), run(true, &mut g2));
    });
}
