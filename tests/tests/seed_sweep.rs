//! Seed-sweep determinism: the Fig. 2 wordcount configuration — with and
//! without a fault plan — exports byte-identical traces when re-run with
//! the same seed, across at least 8 seeds.

mod common;

use common::{fig2_cluster, fig2_job, fig2_job_config, sorted_outputs, MB};
use vhadoop::prelude::*;

/// Input size for the sweep. The Fig. 2 point proper is 16 MB; the sweep
/// keeps its *geometry* (16 VMs on 2 hosts, 15 blocks = one map per
/// worker, 4 reduces, replication 3) but shrinks the bytes so 32 full
/// platform runs stay fast in debug builds. Determinism is a property of
/// the event structure, which is unchanged.
const SWEEP_BYTES: u64 = 4 * MB;

/// One traced sweep run: Fig. 2 geometry, `plan` installed at boot.
fn sweep_trace(seed: u64, plan: FaultPlan) -> (Vec<(String, i64)>, String) {
    let mut p = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(fig2_cluster())
            .hdfs(HdfsConfig { block_size: SWEEP_BYTES / 15, replication: 3 })
            .no_monitor()
            .tracing(true)
            .faults(plan)
            .seed(seed)
            .build(),
    );
    assert_eq!(fig2_job_config().num_reduces, 4);
    let (spec, app, input) = fig2_job(&mut p, SWEEP_BYTES, seed);
    let result = p.run_job(spec, app, input);
    while p.step().is_some() {}
    (sorted_outputs(&result), p.rt.engine.tracer().to_chrome_json())
}

/// A fixed mixed plan landing inside the job's first seconds.
fn sweep_plan() -> FaultPlan {
    FaultPlan::new()
        .at(
            SimTime::from_secs(1),
            FaultKind::StragglerVm { vm: 2, factor: 0.2, duration: SimDuration::from_secs(2) },
        )
        .at(SimTime::from_secs(2), FaultKind::NodeCrash { vm: 7 })
        .at(
            SimTime::from_secs(3),
            FaultKind::LinkDegrade { host: 0, factor: 0.5, duration: SimDuration::from_secs(1) },
        )
}

#[test]
fn fault_free_runs_replay_byte_identically_across_seeds() {
    for seed in 2012..2020u64 {
        let (out_a, trace_a) = sweep_trace(seed, FaultPlan::new());
        let (out_b, trace_b) = sweep_trace(seed, FaultPlan::new());
        assert_eq!(out_a, out_b, "seed {seed}: outputs diverged");
        assert_eq!(trace_a, trace_b, "seed {seed}: clean traces diverged");
        assert!(trace_a.contains("\"cat\":\"map\""), "seed {seed}: no map spans");
    }
}

#[test]
fn faulted_runs_replay_byte_identically_across_seeds() {
    for seed in 2012..2020u64 {
        let (out_a, trace_a) = sweep_trace(seed, sweep_plan());
        let (out_b, trace_b) = sweep_trace(seed, sweep_plan());
        assert_eq!(out_a, out_b, "seed {seed}: faulted outputs diverged");
        assert_eq!(trace_a, trace_b, "seed {seed}: faulted traces diverged");
        assert!(trace_a.contains("\"cat\":\"fault\""), "seed {seed}: faults not traced");
    }
}

#[test]
fn randomly_generated_plans_are_reproducible() {
    // Plans drawn from FaultPlan::random are themselves pure functions of
    // the seed, and the runs they drive replay identically.
    let profile = FaultProfile::new(16, 2);
    for seed in [1u64, 99, 4242] {
        let plan_a = FaultPlan::random(&profile, RootSeed(seed));
        let plan_b = FaultPlan::random(&profile, RootSeed(seed));
        assert_eq!(plan_a, plan_b, "seed {seed}: plan generation diverged");
        let (out_a, trace_a) = sweep_trace(seed, plan_a);
        let (out_b, trace_b) = sweep_trace(seed, plan_b);
        assert_eq!(out_a, out_b);
        assert_eq!(trace_a, trace_b, "seed {seed}: random-plan runs diverged");
    }
}
