//! Energy accounting + monitoring across a platform scenario: consolidate
//! a cluster by live migration and read the power bill.

use simcore::prelude::*;
use vcluster::prelude::*;
use vhadoop::platform::{PlatformConfig, VHadoop};

#[test]
fn consolidation_frees_a_host() {
    // VMs start spread over both hosts; migrate host 0's VMs to host 1
    // through the migration manager, then check the energy verdict.
    use simcore::owners;
    use vcluster::migration::{
        ConstantDirtyModel, MigrationConfig, MigrationEvent, MigrationManager,
    };

    let mut e = Engine::new();
    let spec = ClusterSpec::builder()
        .hosts(2)
        .vms(6)
        .vm_mem_mib(256)
        .placement(Placement::Custom(vec![0, 0, 0, 1, 1, 1]))
        .build();
    let mut cluster = VirtualCluster::new(&mut e, spec);
    let meter = EnergyMeter::start(&e, &cluster, PowerModel::default());
    let movers: Vec<VmId> = cluster.vms().filter(|&v| cluster.host_of(v) == HostId(0)).collect();
    assert_eq!(movers.len(), 3);

    let mut mgr = MigrationManager::new(MigrationConfig::default());
    let mut dirty = ConstantDirtyModel(0.5e6);
    mgr.start_cluster_migration(&mut e, &cluster, &movers, HostId(1));
    let mut done = false;
    while let Some((_, w)) = e.next_wakeup() {
        if w.tag().owner == owners::MIGRATION {
            for ev in mgr.on_wakeup(&mut e, &mut cluster, &mut dirty, &w) {
                if matches!(ev, MigrationEvent::AllDone(_)) {
                    done = true;
                }
            }
        }
    }
    assert!(done, "partial-cluster migration completed");
    assert!(cluster.vms().all(|v| cluster.host_of(v) == HostId(1)), "host 0 emptied");

    let energy = meter.report(&e, &cluster);
    // Host 0 is now idle; its remaining draw is recoverable by shutdown.
    assert!(energy.consolidation_savings_j(energy.host_j(HostId(1))) > 0.0);
}

#[test]
fn migration_energy_is_accounted() {
    let cluster = ClusterSpec::builder()
        .hosts(2)
        .vms(4)
        .vm_mem_mib(256)
        .placement(Placement::SingleDomain)
        .build();
    let mut p = VHadoop::launch(PlatformConfig::builder().cluster(cluster).build());
    let meter = EnergyMeter::start(&p.rt.engine, &p.rt.cluster, PowerModel::default());
    let rep = p.migration(HostId(1)).idle();
    let energy = meter.report(&p.rt.engine, &p.rt.cluster);

    // The window spans the migration.
    assert!((energy.span_s - rep.total_time.as_secs_f64()).abs() < 1.0);
    // Migration burns dom0 CPU on both hosts: dynamic energy is non-zero.
    let dynamic: f64 = energy.per_host.iter().map(|(_, _, d)| d).sum();
    assert!(dynamic > 0.0, "dom0 packet processing consumes energy");
    // Total power stays within the physical envelope.
    let avg_w = energy.total_j() / energy.span_s;
    assert!(
        (240.0..=560.0).contains(&avg_w),
        "2 hosts draw between 2×idle and 2×peak, got {avg_w:.0} W"
    );
    // After consolidation the source host is idle: most of its draw could
    // be recovered by powering it down.
    assert!(energy.consolidation_savings_j(f64::INFINITY) > 0.0);
}

#[test]
fn monitor_sees_migration_traffic() {
    let cluster = ClusterSpec::builder()
        .hosts(2)
        .vms(3)
        .vm_mem_mib(512)
        .placement(Placement::SingleDomain)
        .build();
    let mut p = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(cluster)
            .monitor_interval(SimDuration::from_millis(500))
            .build(),
    );
    p.migration(HostId(1)).idle();
    let report = p.monitor_report().expect("monitoring enabled");
    assert!(report.samples > 5);
    // The inter-host NICs carried the memory streams.
    let nic = report.resource("pm0.nic").expect("column exists");
    assert!(nic.util.max > 0.9, "migration saturates the source NIC, saw max {:.2}", nic.util.max);
}
