//! The `vsched` control plane through the full platform: no-op invariance
//! (a disabled controller leaves traces byte-identical), closed-loop job
//! streams with SLO accounting, queue-policy ordering, and load-triggered
//! rebalancing that really moves VMs.

use vhadoop::prelude::*;
use workloads::loadgen::{load_job, ArrivalProcess, JobMix};
use workloads::textgen::TextCorpus;
use workloads::wordcount::WordCountApp;

const MB: u64 = 1 << 20;

/// A traced Fig. 2-style wordcount; `ctrl` chooses how the controller is
/// configured (None = builder untouched).
fn traced_wordcount(ctrl: Option<ControllerConfig>) -> String {
    let mut b = PlatformConfig::builder()
        .cluster(ClusterSpec::builder().hosts(2).vms(8).placement(Placement::SingleDomain).build())
        .hdfs(HdfsConfig { block_size: MB, replication: 2 })
        .no_monitor()
        .tracing(true)
        .seed(909);
    if let Some(cfg) = ctrl {
        b = b.controller(cfg);
    }
    let mut p = VHadoop::launch(b.build());
    let bytes = 4 * MB;
    p.register_input("/inv/in", bytes, VmId(1));
    let corpus = TextCorpus::english_like(RootSeed(909));
    let input = GeneratorInput::new(4, MB, move |idx| corpus.split_records(idx, MB));
    let spec =
        JobSpec::new("wc", "/inv/in", "/inv/out").with_config(JobConfig::default().with_reduces(2));
    let res = p.run_job(spec, Box::new(WordCountApp), Box::new(input));
    assert!(res.elapsed_secs() > 0.0);
    while p.step().is_some() {}
    p.rt.engine.tracer().to_chrome_json()
}

/// The control plane is strictly opt-in: a default (disabled) controller
/// config must leave the whole run — every span, timestamp, and counter —
/// byte-identical to a platform that never heard of `vsched`.
#[test]
fn disabled_controller_is_a_byte_identical_noop() {
    let bare = traced_wordcount(None);
    let disabled = traced_wordcount(Some(ControllerConfig::default()));
    assert!(!bare.is_empty());
    assert_eq!(bare, disabled, "disabled controller perturbed the trace");
}

/// A closed-loop arrival stream: every admitted job starts and finishes,
/// nothing starves, and the SLO report / JSON export agree with the run.
#[test]
fn job_stream_completes_with_sane_slo_accounting() {
    let mut p = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(
                ClusterSpec::builder().hosts(2).vms(16).placement(Placement::SingleDomain).build(),
            )
            .hdfs(HdfsConfig { block_size: MB, replication: 2 })
            .no_monitor()
            .tracing(true)
            .seed(4242)
            .controller(ControllerConfig::enabled_with(PlacementKind::Spread))
            .build(),
    );
    let arrivals =
        ArrivalProcess::new(JobMix::ShuffleHeavy, 4, SimDuration::from_secs(3), 2, RootSeed(7))
            .schedule();
    for (i, a) in arrivals.iter().enumerate() {
        let run = i as u32;
        p.schedule_job(a.at, a.tenant, a.expected_s, a.job(run));
    }
    let done = p.drive_until_idle();
    assert_eq!(done.len(), 4, "all four jobs produce results");

    let ctrl = p.controller().expect("controller is enabled");
    let c = ctrl.counters();
    assert_eq!(c.jobs_offered, 4);
    assert_eq!(c.jobs_admitted, 4);
    assert_eq!(c.jobs_rejected, 0);
    assert_eq!(c.jobs_started, 4);
    assert_eq!(c.jobs_finished, 4);
    let rep = ctrl.slo_report();
    assert_eq!(rep.starved, 0, "an admitted job never started");
    assert_eq!(rep.finished, 4);
    assert!(rep.makespan_mean_s > 0.0);
    // The solo estimate serializes the NIC term, so slowdowns can dip
    // below 1.0 — but they must be positive and finite.
    assert!(rep.slowdown_max > 0.0 && rep.slowdown_max.is_finite());
    let json = ctrl.slo_report_json();
    for key in ["\"report\": \"slo\"", "\"starved\": 0", "\"queue_wait_s\"", "\"counters\""] {
        assert!(json.contains(key), "SLO JSON missing {key}: {json}");
    }
    // The control plane narrates itself into the trace.
    let trace = p.rt.engine.tracer().to_chrome_json();
    assert!(trace.contains("\"cat\":\"ctrl\""), "no ctrl spans in trace");
    assert!(trace.contains("start_job"), "job starts not traced");
    // The platform metrics snapshot exports the same story.
    let m = p.metrics();
    assert!(m.to_text().contains("ctrl:"), "ctrl line missing from metrics text");
    let cs = m.ctrl.expect("metrics carry controller stats");
    assert_eq!(cs.jobs_finished, 4);
    assert_eq!(cs.jobs_admitted, 4);
}

/// Launches a single-slot controller platform with `policy` and returns
/// the per-job SLO records after all jobs drain.
fn run_ordered(policy: QueuePolicy, jobs: &[(u32, f64)]) -> Vec<JobSlo> {
    let mut cfg = ControllerConfig::enabled_with(PlacementKind::Spec);
    cfg.queue = QueueConfig { policy, max_active: 1, ..QueueConfig::default() };
    let mut p = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(
                ClusterSpec::builder().hosts(2).vms(8).placement(Placement::SingleDomain).build(),
            )
            .hdfs(HdfsConfig { block_size: MB, replication: 2 })
            .no_monitor()
            .seed(11)
            .controller(cfg)
            .build(),
    );
    for (i, &(tenant, cpu_secs)) in jobs.iter().enumerate() {
        let run = i as u32;
        // All arrive at t=1s; ctrl ids break the tie in schedule order.
        p.schedule_job(SimTime::from_secs(1), tenant, cpu_secs, load_job(run, 2, cpu_secs, MB));
    }
    let done = p.drive_until_idle();
    assert_eq!(done.len(), jobs.len());
    let ctrl = p.controller().unwrap();
    assert_eq!(ctrl.slo_report().starved, 0);
    ctrl.job_slos().to_vec()
}

fn started(slos: &[JobSlo], ctrl_id: u32) -> SimTime {
    slos.iter().find(|s| s.ctrl_id == ctrl_id).and_then(|s| s.started).expect("job started")
}

/// Shortest-expected-first jumps the short job over earlier long ones;
/// FIFO on the same stream preserves arrival order.
#[test]
fn shortest_first_reorders_the_queue_and_fifo_does_not() {
    // ctrl ids 0..3: two long jobs, then a short one, then a long one.
    let jobs = [(0, 8.0), (0, 8.0), (0, 1.0), (0, 8.0)];
    let sf = run_ordered(QueuePolicy::ShortestFirst, &jobs);
    assert!(
        started(&sf, 2) < started(&sf, 1),
        "shortest-first must start the short job before queued long ones"
    );
    let fifo = run_ordered(QueuePolicy::Fifo, &jobs);
    assert!(started(&fifo, 1) < started(&fifo, 2), "FIFO must keep arrival order");
    assert!(started(&fifo, 2) < started(&fifo, 3));
}

/// Fair share alternates tenants even when one tenant queued first.
#[test]
fn fair_share_interleaves_tenants() {
    // Tenant 0 floods the queue (ids 0,1,2), tenant 1 arrives last (id 3).
    let jobs = [(0, 4.0), (0, 4.0), (0, 4.0), (1, 4.0)];
    let fair = run_ordered(QueuePolicy::FairShare, &jobs);
    assert!(
        started(&fair, 3) < started(&fair, 2),
        "fair share must serve the starved tenant before tenant 0's backlog"
    );
}

/// Skewed load on a packed cluster trips the rebalancer: it plans live
/// migrations off the hot host, the moves complete, and the jobs still
/// finish correctly.
#[test]
fn rebalancer_migrates_vms_off_the_hot_host() {
    let mut cfg = ControllerConfig::enabled_with(PlacementKind::Pack);
    cfg.rebalance = Some(RebalanceConfig {
        interval: SimDuration::from_secs(1),
        hot_cpu: 0.5,
        hot_nic: 0.9,
        cold_cpu: 0.2,
        hysteresis_ticks: 2,
        max_moves: 2,
        cooldown: SimDuration::from_secs(5),
        consolidate: false,
        mode: RebalanceMode::Estimate,
        hint: WorkloadHint::default(),
    });
    let mut p = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(
                ClusterSpec::builder().hosts(2).vms(16).placement(Placement::SingleDomain).build(),
            )
            .hdfs(HdfsConfig { block_size: MB, replication: 2 })
            .no_monitor()
            .tracing(true)
            .seed(31)
            .controller(cfg)
            .build(),
    );
    // Pack put every VM on host 0; a wide CPU-heavy wave makes it hot.
    for run in 0..2u32 {
        p.schedule_job(
            SimTime::from_secs(u64::from(run)),
            run,
            20.0,
            load_job(run, 12, 6.0, 4 * MB),
        );
    }
    let done = p.drive_until_idle();
    assert_eq!(done.len(), 2);
    let c = p.controller().unwrap().counters();
    assert!(c.rebalance_ticks > 0, "controller never ticked");
    assert!(c.migrations_planned > 0, "hot host never triggered a plan");
    assert!(c.migrations_completed > 0, "planned migrations never completed: {c:?}");
    let trace = p.rt.engine.tracer().to_chrome_json();
    assert!(trace.contains("plan_migration"), "rebalance plan not traced");
    // The moves really happened: host 0 no longer holds every VM.
    let on_host0 = (0..16).filter(|&v| p.rt.cluster.host_of(VmId(v)) == HostId(0)).count();
    assert!(on_host0 < 16, "no VM actually left the packed host");
}

/// The same hot-host scenario with the rebalancer in what-if mode: the
/// decision is deferred, the platform forks per candidate destination,
/// measures each, commits the best-measured move, and the estimator's
/// error surfaces in `ControllerStats`.
#[test]
fn whatif_rebalancing_forks_measures_and_commits_best() {
    let mut cfg = ControllerConfig::enabled_with(PlacementKind::Pack);
    cfg.rebalance = Some(RebalanceConfig {
        interval: SimDuration::from_secs(1),
        hot_cpu: 0.5,
        hot_nic: 0.9,
        cold_cpu: 0.2,
        hysteresis_ticks: 2,
        max_moves: 2,
        cooldown: SimDuration::from_secs(5),
        consolidate: false,
        mode: RebalanceMode::WhatIf,
        hint: WorkloadHint::default(),
    });
    let mut p = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(
                ClusterSpec::builder().hosts(3).vms(12).placement(Placement::SingleDomain).build(),
            )
            .hdfs(HdfsConfig { block_size: MB, replication: 2 })
            .no_monitor()
            .tracing(true)
            .seed(31)
            .controller(cfg)
            .build(),
    );
    for run in 0..2u32 {
        p.schedule_job(SimTime::from_secs(u64::from(run)), run, 20.0, load_job(run, 10, 5.0, MB));
    }
    let done = p.drive_until_idle();
    assert_eq!(done.len(), 2);

    let outcomes = p.observe().whatif;
    assert!(!outcomes.is_empty(), "hot host never triggered a what-if evaluation");
    let first_at = outcomes[0].at;
    let round: Vec<_> = outcomes.iter().filter(|o| o.at == first_at).collect();
    assert!(round.len() >= 2, "pack on 3 hosts leaves >= 2 candidate destinations");
    let chosen: Vec<_> = round.iter().filter(|o| o.chosen).collect();
    assert_eq!(chosen.len(), 1, "exactly one candidate is committed per round");
    assert!(
        round.iter().all(|o| chosen[0].measured_s <= o.measured_s),
        "committed candidate must have the best measured makespan"
    );
    assert!(round.iter().all(|o| o.measured_s > 0.0 && o.estimated_s > 0.0));

    // The committed move really happened in the *parent*.
    let c = p.controller().unwrap().counters();
    assert!(c.migrations_planned > 0, "what-if never committed a move");
    assert_eq!(c.migrations_completed, c.migrations_planned);
    let trace = p.rt.engine.tracer().to_chrome_json();
    assert!(trace.contains("whatif_defer"), "deferred decision not traced");
    assert!(trace.contains("whatif_commit"), "commit not traced");

    // Estimator error is distilled into ControllerStats.
    let stats = p.metrics().ctrl.expect("controller stats");
    assert_eq!(stats.whatif_evals, outcomes.len() as u64);
    assert!(stats.whatif_estimator_err_max >= stats.whatif_estimator_err_mean);
    assert!(stats.whatif_estimator_err_mean >= 0.0);
}
