//! Cross-crate tests of the `vchar` characterization subsystem: the
//! sweep's determinism contract, the learned cost model's quality floor,
//! and the controller's per-model what-if attribution.

use simcore::prelude::SimTime;
use vchar::prelude::*;
use vcluster::spec::{ClusterSpec, Placement};
use vhadoop::prelude::*;
use vsched::model::{MakespanKind, RegressionTree, TreeConfig};
use vsched::rebalance::{RebalanceConfig, RebalanceMode};
use workloads::loadgen::load_job;

/// The tentpole determinism pin: the characterization dataset must be
/// byte-identical at 1 vs N sweep threads and across same-seed repeats —
/// and the model fitted from it must beat the hand-priced estimator it
/// recalibrates on the held-out quarter.
#[test]
fn characterization_dataset_is_thread_invariant_and_fits() {
    let spec = SweepSpec::tiny();
    let seq = run_sweep(&spec, 1);
    let par = run_sweep(&spec, 3);
    let again = run_sweep(&spec, 1);

    assert_eq!(seq.rows.len(), spec.runs());
    assert_eq!(seq.to_csv(), par.to_csv(), "CSV bytes must not depend on the thread count");
    assert_eq!(seq.to_json(), par.to_json(), "JSON bytes must not depend on the thread count");
    assert_eq!(seq.to_csv(), again.to_csv(), "same seed must reproduce the CSV bytes");

    // Schema: header matches the dictionary, every line is rectangular.
    let csv = seq.to_csv();
    let mut lines = csv.lines();
    assert_eq!(lines.next().unwrap(), Dataset::columns().join(","));
    for line in lines {
        assert_eq!(line.split(',').count(), Dataset::columns().len());
    }
    assert!(seq.to_json().contains(&format!("\"version\": {DATASET_VERSION}")));

    // Labels are real simulations.
    assert!(seq.rows.iter().all(|r| r.makespan_s > 0.0));
    assert!(seq.rows.iter().any(|r| r.jobs_finished > 0));

    // The fitted tree must not lose to the baseline it can reproduce
    // (feature 0 *is* the hand estimate, so hand-priced accuracy is a
    // floor, not a coincidence).
    let (tree, eval) = fit_cost_model(&seq, &TreeConfig::default());
    assert!(eval.rows_heldout > 0);
    assert!(
        eval.learned_mae_s <= eval.hand_mae_s,
        "learned MAE {:.2}s must not exceed hand-priced MAE {:.2}s",
        eval.learned_mae_s,
        eval.hand_mae_s
    );
    assert!(tree.node_count() >= 1);
    assert!(heldout_csv(&seq, &tree).lines().count() > 1);
}

/// Runs the asymmetric hot-host stream with what-if rebalancing priced
/// by `model`; returns the recorded outcomes.
fn whatif_outcomes(model: MakespanKind) -> Vec<vsched::controller::WhatIfOutcome> {
    let mut cfg = ControllerConfig::enabled_with(PlacementKind::Spec);
    cfg.model = model;
    cfg.rebalance = Some(RebalanceConfig {
        interval: SimDuration::from_secs(1),
        hot_cpu: 0.5,
        hysteresis_ticks: 2,
        max_moves: 2,
        cooldown: SimDuration::from_secs(5),
        mode: RebalanceMode::WhatIf,
        ..RebalanceConfig::default()
    });
    let map: Vec<u32> = (0..12)
        .map(|v| match v {
            9 | 10 => 1,
            11 => 2,
            _ => 0,
        })
        .collect();
    let mut p = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(
                ClusterSpec::builder().hosts(3).vms(12).placement(Placement::Custom(map)).build(),
            )
            .hdfs(HdfsConfig { block_size: 1 << 20, replication: 2 })
            .no_monitor()
            .seed(4242)
            .controller(cfg)
            .build(),
    );
    for run in 0..3u32 {
        p.schedule_job(
            SimTime::from_secs(u64::from(run)),
            run,
            20.0,
            load_job(run, 10, 6.0, 4 << 20),
        );
    }
    let done = p.drive_until_idle();
    assert_eq!(done.len(), 3, "every arrival must complete");
    let obs = p.observe();
    let ctrl = obs.metrics.ctrl.expect("controller stats present");
    // The distilled stats group errors by exactly the models that priced
    // evaluations.
    if !obs.whatif.is_empty() {
        assert_eq!(ctrl.whatif_by_model.len(), 1, "one model priced every outcome");
        assert_eq!(ctrl.whatif_by_model[0].evals, obs.whatif.len() as u64);
        assert!(ctrl.whatif_by_model[0].err_mean >= 0.0);
    }
    obs.whatif
}

/// Satellite pin: every what-if outcome records which makespan model
/// produced its estimate, for both built-in models.
#[test]
fn whatif_outcomes_carry_model_attribution() {
    let hand = whatif_outcomes(MakespanKind::HandPriced);
    assert!(!hand.is_empty(), "the hot host must trip a what-if evaluation");
    assert!(hand.iter().all(|o| o.model == "hand-priced"));

    // A deliberately crude learned model: constant 30 s. Attribution —
    // not accuracy — is under test here.
    let rows = vec![vec![0.0], vec![1.0]];
    let labels = vec![30.0, 30.0];
    let tree = RegressionTree::fit(&rows, &labels, &TreeConfig::default());
    let learned = whatif_outcomes(MakespanKind::Learned(tree));
    assert!(!learned.is_empty());
    assert!(learned.iter().all(|o| o.model == "learned"));

    // What-if commits by *measured* makespan, so both runs price the
    // same candidates: the measured series must be bitwise identical.
    let m = |os: &[vsched::controller::WhatIfOutcome]| {
        os.iter().map(|o| o.measured_s.to_bits()).collect::<Vec<_>>()
    };
    assert_eq!(m(&hand), m(&learned), "model choice must not perturb the trajectory");
}
