//! End-to-end contract of the hierarchical network topology: a
//! single-rack `TopologySpec` — whatever its other knobs say — degenerates
//! byte-for-byte to the legacy two-level fabric, multi-rack fabrics stay
//! deterministic while genuinely changing the simulation, and the
//! per-rack ToR accounting sees the traffic the fabric carries.

use vcluster::topology::{RackPlacement, TopologySpec};
use vhadoop::prelude::*;
use workloads::wordcount::run_wordcount_traced;

const MB: u64 = 1 << 20;

/// The Fig. 2-shaped traced wordcount used as the identity probe: heavy
/// shuffle (no combiner), one block per map, fixed seed.
fn traced(spec: ClusterSpec) -> (f64, String) {
    let cfg = JobConfig::default().with_combiner(false).with_reduces(4);
    let hdfs = HdfsConfig { block_size: (16 * MB / 15).max(MB), replication: 3 };
    let (rep, trace) = run_wordcount_traced(spec, 16 * MB, cfg, hdfs, RootSeed(2012));
    (rep.elapsed_s, trace)
}

/// The degeneration contract behind every golden trace in this repo: on
/// one rack the topology layer must register the same resources in the
/// same order, consume the same RNG draws, and charge the same latencies
/// as the pre-topology code — so an explicit single-rack spec (with its
/// multi-rack-only knobs set to conspicuous values) traces byte-identical
/// to the untouched default.
#[test]
fn single_rack_topology_is_byte_identical_to_default() {
    let default_spec =
        ClusterSpec::builder().hosts(2).vms(16).placement(Placement::SingleDomain).build();
    let mut explicit = default_spec.clone();
    let mut topo = TopologySpec::racks(1);
    topo.rack_placement = RackPlacement::RoundRobin; // irrelevant at one rack
    topo.core_bw = 123.0; // ignored: one rack builds no core trunk
    explicit.topology = topo;

    let (t_default, a) = traced(default_spec);
    let (t_explicit, b) = traced(explicit);
    assert!(t_default > 1.0);
    assert_eq!(t_default, t_explicit);
    assert_eq!(a, b, "a single-rack TopologySpec must not perturb the simulation");
}

/// Two racks keep the determinism contract (same spec + seed → identical
/// trace) while actually changing the fabric the bytes cross.
#[test]
fn racked_fabric_is_deterministic_and_diverges_from_flat() {
    let racked = || {
        traced(
            ClusterSpec::builder()
                .hosts(4)
                .vms(16)
                .placement(Placement::CrossDomain)
                .racks(2)
                .build(),
        )
    };
    let (ta, a) = racked();
    let (tb, b) = racked();
    assert_eq!(a, b, "same racked spec + seed must trace byte-identical");
    assert_eq!(ta, tb);

    let (_, flat) =
        traced(ClusterSpec::builder().hosts(4).vms(16).placement(Placement::CrossDomain).build());
    assert_ne!(a, flat, "two racks must actually change the simulated fabric");
}

/// The per-rack ToR counters account real traffic: an upload whose
/// replication pipeline spans both racks leaves switched bytes on both
/// ToRs, and utilization stays a sane fraction.
#[test]
fn rack_switch_stats_see_pipeline_traffic() {
    let mut p = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(
                ClusterSpec::builder()
                    .hosts(4)
                    .vms(8)
                    .placement(Placement::CrossDomain)
                    .racks(2)
                    .build(),
            )
            .hdfs(HdfsConfig { block_size: MB, replication: 3 })
            .no_monitor()
            .build(),
    );
    p.upload_input("/topo/in", 8 * MB, VmId(1));
    while p.step().is_some() {}

    let elapsed = p.rt.engine.now().as_secs_f64();
    assert!(elapsed > 0.0);
    let stats = p.rt.cluster.rack_switch_stats(&p.rt.engine, elapsed);
    assert_eq!(stats.len(), 2, "one stat row per rack");
    for s in &stats {
        assert!(s.bytes > 0.0, "rack {} ToR never switched a byte", s.rack);
        assert!(
            (0.0..=1.0).contains(&s.mean_util),
            "rack {} mean utilization {} out of range",
            s.rack,
            s.mean_util
        );
    }
}
