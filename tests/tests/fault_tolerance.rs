//! Fault tolerance across the stack: node failures during running jobs
//! — "the hadoop fault tolerance mechanism will re-run the job or restore
//! from other available backup data" (paper, conclusion iii).

use mapreduce::job::JobEvent;
use mapreduce::prelude::*;
use simcore::prelude::*;
use vcluster::prelude::{ClusterSpec, Placement};
use vhadoop::platform::{PlatformConfig, PlatformEvent, VHadoop};
use vhdfs::hdfs::HdfsConfig;
use workloads::textgen::TextCorpus;
use workloads::wordcount::WordCountApp;

const MB: u64 = 1 << 20;

fn platform(vms: u32) -> VHadoop {
    VHadoop::launch(
        PlatformConfig::builder()
            .cluster(
                ClusterSpec::builder().hosts(2).vms(vms).placement(Placement::CrossDomain).build(),
            )
            .hdfs(HdfsConfig { block_size: MB, replication: 3 })
            .seed(90)
            .build(),
    )
}

fn wordcount_input(
    p: &VHadoop,
    path: &str,
    bytes: u64,
) -> GeneratorInput<impl Fn(usize) -> Vec<Record> + Send> {
    let blocks = p.rt.hdfs.stat(path).expect("registered").blocks.len();
    let block_size = p.rt.hdfs.config().block_size;
    let corpus = TextCorpus::english_like(RootSeed(91));
    let last = blocks - 1;
    GeneratorInput::new(blocks, block_size, move |idx| {
        let b = if idx == last { bytes - last as u64 * block_size } else { block_size };
        corpus.split_records(idx, b)
    })
}

/// Runs wordcount; `fail_at` kills a worker once that many maps finished.
fn run_with_failure(fail_after_maps: Option<usize>) -> JobResult {
    let mut p = platform(8);
    let bytes = 8 * MB - 1;
    p.register_input("/wc", bytes, VmId(1));
    let input = wordcount_input(&p, "/wc", bytes);
    let spec = JobSpec::new("wc", "/wc", "/wc-out");
    let id = p.rt.submit(spec, Box::new(WordCountApp), Box::new(input));

    let mut maps_done = 0;
    let mut failed = false;
    loop {
        let (_, events) = p.step().expect("job must finish");
        for ev in events {
            match ev {
                PlatformEvent::Job(JobEvent::MapDone(..)) => {
                    maps_done += 1;
                    if let Some(n) = fail_after_maps {
                        if maps_done == n && !failed {
                            failed = true;
                            // Kill a worker that is mid-job (one actually
                            // holding task slots — block placement is
                            // randomized, so a fixed id could be idle).
                            let victim =
                                p.rt.mr
                                    .busy_trackers()
                                    .into_iter()
                                    .find(|&v| v != p.rt.hdfs.namenode())
                                    .expect("some worker is mid-job");
                            let impact = p.fail_node(victim);
                            assert_eq!(impact.lost_blocks, 0, "replication 3 loses nothing");
                            assert!(
                                impact.remapped_tasks > 0 || impact.rereplicated_blocks > 0,
                                "failing a busy worker has visible impact"
                            );
                        }
                    }
                }
                PlatformEvent::Job(JobEvent::JobDone(res)) if res.id == id => return *res,
                _ => {}
            }
        }
    }
}

#[test]
fn job_survives_worker_crash_mid_map_phase() {
    let clean = run_with_failure(None);
    let crashed = run_with_failure(Some(2));
    assert!(crashed.counters.relaunched_tasks > 0, "work was re-queued");
    // Identical results despite the crash.
    let mut a = clean.outputs.clone();
    let mut b = crashed.outputs.clone();
    a.sort_by(|x, y| x.0.cmp(&y.0));
    b.sort_by(|x, y| x.0.cmp(&y.0));
    // Different reduce partitions may order differently; compare as maps.
    let sum = |v: &[Record]| -> i64 { v.iter().map(|(_, x)| x.as_int()).sum() };
    assert_eq!(sum(&a), sum(&b), "total word count preserved across the crash");
    assert_eq!(a.len(), b.len(), "same distinct words");
    // Re-execution costs bounded time (losing a worker can even reduce
    // NFS contention, so only sanity-bound the difference).
    assert!(
        crashed.elapsed_secs() > clean.elapsed_secs() * 0.5
            && crashed.elapsed_secs() < clean.elapsed_secs() * 4.0,
        "crashed {:.1}s vs clean {:.1}s",
        crashed.elapsed_secs(),
        clean.elapsed_secs()
    );
}

#[test]
fn crash_during_reduce_phase_recovers() {
    let mut p = platform(8);
    let bytes = 4 * MB - 1;
    p.register_input("/wc2", bytes, VmId(1));
    let input = wordcount_input(&p, "/wc2", bytes);
    let spec =
        JobSpec::new("wc2", "/wc2", "/wc2-out").with_config(JobConfig::default().with_reduces(3));
    let id = p.rt.submit(spec, Box::new(WordCountApp), Box::new(input));

    let mut failed = false;
    let result = loop {
        let (_, events) = p.step().expect("job must finish");
        for ev in &events {
            if let PlatformEvent::Job(JobEvent::MapPhaseDone(_)) = ev {
                // Reduce phase begins now; fail a node shortly after.
                if !failed {
                    failed = true;
                    p.fail_node(VmId(5));
                }
            }
        }
        if let Some(res) = events.into_iter().find_map(|ev| match ev {
            PlatformEvent::Job(JobEvent::JobDone(res)) if res.id == id => Some(res),
            _ => None,
        }) {
            break *res;
        }
    };
    assert!(result.counters.reduce_output_records > 100, "job completed with output");
}

#[test]
fn failed_worker_gets_no_new_tasks() {
    let mut p = platform(6);
    let victim = VmId(2);
    p.fail_node(victim);
    let bytes = 4 * MB - 1;
    p.register_input("/wc3", bytes, VmId(1));
    let input = wordcount_input(&p, "/wc3", bytes);
    let spec = JobSpec::new("wc3", "/wc3", "/wc3-out");
    let result = p.run_job(spec, Box::new(WordCountApp), Box::new(input));
    assert!(result.counters.launched_maps > 0);
    assert!(!p.rt.mr.trackers().contains(&victim));
}

#[test]
#[should_panic(expected = "cannot fail the master")]
fn master_failure_is_rejected() {
    let mut p = platform(4);
    p.fail_node(VmId(0));
}
