//! Cross-crate property tests: invariants that must hold for arbitrary
//! configurations of the whole stack.

use mapreduce::config::JobConfig;
use proptest::prelude::*;
use simcore::rng::RootSeed;
use vcluster::spec::{ClusterSpec, Placement};
use workloads::terasort::run_terasort;
use workloads::wordcount::run_wordcount;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// TeraSort output is globally sorted and complete for arbitrary data
    /// sizes, reduce counts, and placements.
    #[test]
    fn terasort_always_sorts(
        kb in 64u64..2048,
        reduces in 1u32..6,
        cross in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let placement = if cross { Placement::CrossDomain } else { Placement::SingleDomain };
        let cluster = ClusterSpec::builder().hosts(2).vms(5).placement(placement).build();
        let rep = run_terasort(cluster, kb * 1024, reduces, RootSeed(seed));
        prop_assert!(rep.valid, "unsorted or lossy output for {kb} KB / {reduces} reduces");
        prop_assert!(rep.records > 0);
    }

    /// Wordcount conserves words: total counted occurrences are identical
    /// whatever the reduce count, combiner setting, or placement.
    #[test]
    fn wordcount_conserves_counts(
        reduces in 1u32..5,
        combiner in any::<bool>(),
        cross in any::<bool>(),
    ) {
        let placement = if cross { Placement::CrossDomain } else { Placement::SingleDomain };
        let cluster = ClusterSpec::builder().hosts(2).vms(6).placement(placement).build();
        let cfg = JobConfig::default().with_reduces(reduces).with_combiner(combiner);
        let rep = run_wordcount(cluster, 2 << 20, cfg, RootSeed(13));
        let total: i64 = rep.result.outputs.iter().map(|(_, v)| v.as_int()).sum();
        // The canonical run (1 reduce, combiner on) on the same corpus.
        let base_cluster = ClusterSpec::builder().hosts(2).vms(6).build();
        let base = run_wordcount(base_cluster, 2 << 20, JobConfig::default(), RootSeed(13));
        let base_total: i64 = base.result.outputs.iter().map(|(_, v)| v.as_int()).sum();
        prop_assert_eq!(total, base_total, "word occurrences must be conserved");
    }

    /// The simulated clock only moves forward and jobs always terminate.
    #[test]
    fn jobs_always_terminate(vms in 3u32..10, mb in 1u64..6) {
        let cluster = ClusterSpec::builder().hosts(2).vms(vms).placement(Placement::CrossDomain).build();
        let rep = run_wordcount(cluster, mb << 20, JobConfig::default(), RootSeed(17));
        prop_assert!(rep.elapsed_s.is_finite() && rep.elapsed_s > 0.0);
    }
}
