//! Cross-crate randomized tests: invariants that must hold for arbitrary
//! configurations of the whole stack (seeded loops plus the in-repo
//! `proptest` shim — the offline build has no crates.io proptest).

use mapreduce::config::JobConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcore::rng::RootSeed;
use vcluster::spec::{ClusterSpec, Placement};
use workloads::terasort::run_terasort;
use workloads::wordcount::run_wordcount;

/// TeraSort output is globally sorted and complete for arbitrary data
/// sizes, reduce counts, and placements.
#[test]
fn terasort_always_sorts() {
    let mut rng = StdRng::seed_from_u64(0x7E2A);
    for _case in 0..8 {
        let kb = rng.gen_range(64u64..2048);
        let reduces = rng.gen_range(1u32..6);
        let placement =
            if rng.gen_bool(0.5) { Placement::CrossDomain } else { Placement::SingleDomain };
        let seed = rng.gen_range(0u64..1000);
        let cluster = ClusterSpec::builder().hosts(2).vms(5).placement(placement).build();
        let rep = run_terasort(cluster, kb * 1024, reduces, RootSeed(seed));
        assert!(rep.valid, "unsorted or lossy output for {kb} KB / {reduces} reduces");
        assert!(rep.records > 0);
    }
}

/// Wordcount conserves words: total counted occurrences are identical
/// whatever the reduce count, combiner setting, or placement.
#[test]
fn wordcount_conserves_counts() {
    // The canonical run (1 reduce, combiner on) on the same corpus.
    let base_cluster = ClusterSpec::builder().hosts(2).vms(6).build();
    let base = run_wordcount(base_cluster, 2 << 20, JobConfig::default(), RootSeed(13));
    let base_total: i64 = base.result.outputs.iter().map(|(_, v)| v.as_int()).sum();

    let mut rng = StdRng::seed_from_u64(0x33CC);
    for _case in 0..8 {
        let reduces = rng.gen_range(1u32..5);
        let combiner = rng.gen_bool(0.5);
        let placement =
            if rng.gen_bool(0.5) { Placement::CrossDomain } else { Placement::SingleDomain };
        let cluster = ClusterSpec::builder().hosts(2).vms(6).placement(placement).build();
        let cfg = JobConfig::default().with_reduces(reduces).with_combiner(combiner);
        let rep = run_wordcount(cluster, 2 << 20, cfg, RootSeed(13));
        let total: i64 = rep.result.outputs.iter().map(|(_, v)| v.as_int()).sum();
        assert_eq!(total, base_total, "word occurrences must be conserved");
    }
}

/// The simulated clock only moves forward and jobs always terminate.
#[test]
fn jobs_always_terminate() {
    let mut rng = StdRng::seed_from_u64(0x7E51);
    for _case in 0..6 {
        let vms = rng.gen_range(3u32..10);
        let mb = rng.gen_range(1u64..6);
        let cluster =
            ClusterSpec::builder().hosts(2).vms(vms).placement(Placement::CrossDomain).build();
        let rep = run_wordcount(cluster, mb << 20, JobConfig::default(), RootSeed(17));
        assert!(rep.elapsed_s.is_finite() && rep.elapsed_s > 0.0);
    }
}

/// A random `FaultPlan` over a random small cluster never breaks the
/// platform's core guarantees: the run terminates, the job's output
/// payload equals the fault-free run's, and no block ever drops to zero
/// live replicas (replication 3 vs. at most 2 crashes).
#[test]
fn random_fault_plans_preserve_results_and_data() {
    use vhadoop::prelude::*;

    let mb = 1u64 << 20;
    let run = |vms: u32, seed: u64, plan: FaultPlan| {
        let mut p = VHadoop::launch(
            PlatformConfig::builder()
                .cluster(
                    ClusterSpec::builder()
                        .hosts(2)
                        .vms(vms)
                        .placement(Placement::CrossDomain)
                        .build(),
                )
                .hdfs(HdfsConfig { block_size: mb, replication: 3 })
                .no_monitor()
                .faults(plan)
                .seed(seed)
                .build(),
        );
        p.register_input("/prop/in", 3 * mb, VmId(1));
        let corpus = workloads::textgen::TextCorpus::english_like(RootSeed(seed).derive("corpus"));
        let input = GeneratorInput::new(3, mb, move |idx| corpus.split_records(idx, mb));
        let spec = JobSpec::new("wc", "/prop/in", "/prop/out")
            .with_config(JobConfig::default().with_reduces(2));
        // run_job panics if the simulation drains first — that IS the
        // termination property.
        let result = p.run_job(spec, Box::new(workloads::wordcount::WordCountApp), Box::new(input));
        while p.step().is_some() {}
        let mut outputs: Vec<(String, i64)> =
            result.outputs.iter().map(|(k, v)| (k.as_text().to_string(), v.as_int())).collect();
        outputs.sort();
        (outputs, p)
    };

    proptest::check("random-fault-plans", proptest::Config::with_cases(5), |g| {
        let vms = g.u32_in(5, 8);
        let seed = g.u64_in(0, 10_000);
        let (clean, _) = run(vms, seed, FaultPlan::new());

        let mut profile = FaultProfile::new(vms, 2);
        profile.max_events = g.u32_in(1, 5);
        let plan = FaultPlan::random(&profile, RootSeed(g.u64_in(0, u64::MAX - 1)));
        let planned = plan.len();
        let (faulted, p) = run(vms, seed, plan);

        assert_eq!(faulted, clean, "injected faults changed the job's output payload");
        assert_eq!(p.rt.hdfs.lost_blocks(), 0, "a block lost its last replica");
        for (id, meta) in p.rt.hdfs.namespace().blocks() {
            assert!(!meta.replicas.is_empty(), "{id} has no live replica");
        }
        assert_eq!(
            p.fault_log().iter().map(|f| f.lost_blocks).sum::<usize>(),
            0,
            "an injected crash destroyed acknowledged data"
        );
        assert_eq!(p.fault_log().len(), planned, "every planned event fires exactly once");
    });
}

/// HSSort under random `FaultPlan`s never yields a silently wrong
/// validated run: either HSValidate passes AND the output really is
/// globally sorted and record-count-preserving, or the run reports an
/// explicit failure (a violation, or a panic on drain — termination is
/// part of the property).
#[test]
fn random_fault_plans_never_validate_a_wrong_hssort() {
    use vhadoop::prelude::*;
    use workloads::tpcxhs::{
        hsgen_job, hssort_job, hsvalidate_job, hsvalidate_verdict, integrity_prescan,
        record_sort_checksums, register_hsgen, HsPlan,
    };

    proptest::check("hssort-under-faults", proptest::Config::with_cases(4), |g| {
        let vms = g.u32_in(6, 9);
        let seed = g.u64_in(0, 10_000);
        let plan = HsPlan::new(400_000, 2, RootSeed(seed)).with_block_size(100_000);
        let mut profile = FaultProfile::new(vms, 2);
        profile.max_events = g.u32_in(1, 4);
        let fault_plan = FaultPlan::random(&profile, RootSeed(g.u64_in(0, u64::MAX - 1)));

        let mut p = VHadoop::launch(
            PlatformConfig::builder()
                .cluster(
                    ClusterSpec::builder()
                        .hosts(2)
                        .vms(vms)
                        .placement(Placement::CrossDomain)
                        .build(),
                )
                .hdfs(plan.hdfs_config(3))
                .no_monitor()
                .faults(fault_plan)
                .seed(seed)
                .build(),
        );
        let (spec, app, input) = hsgen_job(&plan);
        p.run_job(spec, app, input);
        register_hsgen(&mut p.rt, &plan);
        let (spec, app, input) = hssort_job(&plan);
        let sort = p.run_job(spec, app, input);
        while p.step().is_some() {}
        record_sort_checksums(&mut p.rt, &sort);

        let pre = integrity_prescan(&p.rt);
        if !pre.is_empty() {
            return; // explicit failure — diagnosed, not silent
        }
        let (spec, app, input) = hsvalidate_job(&p.rt, &plan, &sort);
        let vres = p.run_job(spec, app, input);
        let verdict = hsvalidate_verdict(&p.rt, &plan, &vres);
        if verdict.passed {
            // A passing verdict must be *true*: re-check the claimed
            // invariants directly against the output.
            assert!(
                sort.outputs.windows(2).all(|w| w[0].0 <= w[1].0),
                "verdict passed but the output is not globally sorted"
            );
            assert_eq!(
                sort.outputs.len() as u64,
                plan.total_records(),
                "verdict passed but records were lost or duplicated"
            );
        }
    });
}

/// Rack-aware placement: on a two-rack fabric with the default
/// replication factor, every chosen replica set spans at least two racks
/// whenever both racks hold datanodes — the invariant that makes a block
/// survive the loss of a whole rack.
#[test]
fn replica_sets_span_racks_when_capacity_allows() {
    use simcore::prelude::Engine;
    use vcluster::cluster::{VirtualCluster, VmId};

    proptest::check("replicas-span-racks", proptest::Config::with_cases(16), |g| {
        let vms = g.u32_in(4, 16);
        let spec = ClusterSpec::builder()
            .hosts(4)
            .vms(vms)
            .placement(Placement::CrossDomain)
            .racks(2)
            .build();
        let mut e = Engine::new();
        let c = VirtualCluster::new(&mut e, spec);
        // Round-robin over 4 hosts with contiguous racks (hosts 0,1 | 2,3):
        // vms >= 4 guarantees datanodes in both racks.
        let datanodes: Vec<VmId> = (1..vms).map(VmId).collect();
        let writer = VmId(g.u32_in(1, vms - 1));
        let mut rng = simcore::rng::RootSeed(g.u64_in(0, u64::MAX - 1)).stream("prop");
        let reps = vhdfs::placement::choose_replicas(&c, &datanodes, writer, 3, &mut rng);
        assert_eq!(reps[0], writer, "first replica stays on the writer");
        let racks: std::collections::BTreeSet<u32> = reps.iter().map(|&v| c.rack_of(v).0).collect();
        assert!(
            racks.len() >= 2,
            "replicas {reps:?} all landed in rack {racks:?} with both racks available"
        );
    });
}

/// The payoff of the invariant above: no plan of datanode failures that
/// takes out an *entire rack* — in any order, interleaved with
/// re-replication — ever drops a block below one rack's worth of
/// replicas. After the outage every block still has a live replica, and
/// it lives in the surviving rack.
#[test]
fn whole_rack_outage_never_loses_data() {
    use simcore::prelude::*;
    use vcluster::cluster::{VirtualCluster, VmId};
    use vhdfs::hdfs::{Hdfs, HdfsConfig};

    proptest::check("rack-outage-keeps-data", proptest::Config::with_cases(8), |g| {
        let vms = g.u32_in(8, 14);
        let seed = g.u64_in(0, 10_000);
        let spec = ClusterSpec::builder()
            .hosts(4)
            .vms(vms)
            .placement(Placement::CrossDomain)
            .racks(2)
            .build();
        let mut e = Engine::new();
        let c = VirtualCluster::new(&mut e, spec);
        let mut h = Hdfs::format(&c, HdfsConfig::default(), RootSeed(seed));

        let files = g.u32_in(1, 4);
        for f in 0..files {
            let mb = u64::from(g.u32_in(1, 200));
            h.register_file(&c, &format!("/rack/{f}"), mb << 20, VmId(1 + f % (vms - 1)));
        }

        // Kill every datanode of a random rack, in a random order.
        let doomed_rack = g.u32_in(0, 1);
        let mut doomed: Vec<VmId> =
            h.datanodes().iter().copied().filter(|&v| c.rack_of(v).0 == doomed_rack).collect();
        let mut order = StdRng::seed_from_u64(g.u64_in(0, u64::MAX - 1));
        for i in (1..doomed.len()).rev() {
            doomed.swap(i, order.gen_range(0..=i));
        }
        for vm in doomed {
            let (_, lost) = h.fail_datanode(&mut e, &c, vm);
            assert_eq!(lost, 0, "losing {vm} (rack {doomed_rack}) destroyed a block");
        }
        while let Some((_, w)) = e.next_wakeup() {
            h.on_wakeup(&mut e, &w);
        }

        assert_eq!(h.lost_blocks(), 0, "a whole-rack outage must not lose data");
        for (id, bm) in h.namespace().blocks() {
            assert!(!bm.replicas.is_empty(), "{id} has no live replica");
            for &r in &bm.replicas {
                assert_ne!(c.rack_of(r).0, doomed_rack, "{id} lists a replica on the dead rack");
            }
        }
    });
}

/// The admission queue never starves: whatever random `FaultPlan` is
/// thrown at a controller-driven job stream, every admitted job is
/// eventually started and finished — the closed loop keeps pumping
/// through crashes, stalls, and partitions.
#[test]
fn controller_never_starves_jobs_under_random_faults() {
    use vhadoop::prelude::*;
    use workloads::loadgen::load_job;

    let mb = 1u64 << 20;
    proptest::check("controller-never-starves", proptest::Config::with_cases(5), |g| {
        let vms = g.u32_in(6, 10);
        let seed = g.u64_in(0, 10_000);
        let mut profile = FaultProfile::new(vms, 2);
        profile.max_events = g.u32_in(1, 4);
        let plan = FaultPlan::random(&profile, RootSeed(g.u64_in(0, u64::MAX - 1)));

        let mut cfg = ControllerConfig::enabled_with(PlacementKind::Spread);
        cfg.queue.max_active = 2;
        let mut p = VHadoop::launch(
            PlatformConfig::builder()
                .cluster(
                    ClusterSpec::builder()
                        .hosts(2)
                        .vms(vms)
                        .placement(Placement::SingleDomain)
                        .build(),
                )
                .hdfs(HdfsConfig { block_size: mb, replication: 3 })
                .no_monitor()
                .faults(plan)
                .seed(seed)
                .controller(cfg)
                .build(),
        );
        let jobs = g.u32_in(3, 5);
        for run in 0..jobs {
            let cpu = 1.0 + f64::from(run);
            p.schedule_job(
                SimTime::from_secs(u64::from(run)),
                run % 2,
                cpu + 2.0,
                load_job(run, 3, cpu, mb),
            );
        }
        let done = p.drive_until_idle();
        assert_eq!(done.len() as u32, jobs, "a job was lost under faults");

        let rep = p.controller().unwrap().slo_report();
        assert_eq!(rep.admitted, u64::from(jobs));
        assert_eq!(rep.starved, 0, "an admitted job never started: {rep:?}");
        assert_eq!(rep.finished, u64::from(jobs));
    });
}

/// A regression tree fitted on arbitrary data survives a
/// `simcore::persist` encode/decode round trip with **bitwise** identical
/// predictions — the property that makes a learned cost model safe to
/// carry inside deterministic snapshots.
#[test]
fn fitted_trees_round_trip_to_identical_predictions() {
    use simcore::persist::{Decoder, Encoder, Persist};
    use vsched::model::{RegressionTree, TreeConfig};

    proptest::check("tree-persist-roundtrip", proptest::Config::with_cases(32), |g| {
        let n_rows = g.usize_in(2, 60);
        let n_feats = g.usize_in(1, 8);
        let rows: Vec<Vec<f64>> =
            (0..n_rows).map(|_| (0..n_feats).map(|_| g.f64_in(-100.0, 100.0)).collect()).collect();
        let labels: Vec<f64> = (0..n_rows).map(|_| g.f64_in(0.0, 500.0)).collect();
        let cfg = TreeConfig { max_depth: g.usize_in(1, 10), min_leaf: g.usize_in(1, 5) };
        let tree = RegressionTree::fit(&rows, &labels, &cfg);

        let mut e = Encoder::new();
        tree.encode(&mut e);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        let back = RegressionTree::decode(&mut d);
        assert!(d.is_exhausted(), "decoder must consume every byte");
        assert_eq!(tree, back, "structural equality after the round trip");
        for r in &rows {
            assert_eq!(
                tree.predict(r).to_bits(),
                back.predict(r).to_bits(),
                "prediction changed across persist round trip"
            );
        }
        // And probe points the tree never saw.
        for _ in 0..8 {
            let x: Vec<f64> = (0..n_feats).map(|_| g.f64_in(-200.0, 200.0)).collect();
            assert_eq!(tree.predict(&x).to_bits(), back.predict(&x).to_bits());
        }
    });
}
