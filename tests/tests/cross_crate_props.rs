//! Cross-crate randomized tests: invariants that must hold for arbitrary
//! configurations of the whole stack (seeded loops — the offline build has
//! no proptest).

use mapreduce::config::JobConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcore::rng::RootSeed;
use vcluster::spec::{ClusterSpec, Placement};
use workloads::terasort::run_terasort;
use workloads::wordcount::run_wordcount;

/// TeraSort output is globally sorted and complete for arbitrary data
/// sizes, reduce counts, and placements.
#[test]
fn terasort_always_sorts() {
    let mut rng = StdRng::seed_from_u64(0x7E2A);
    for _case in 0..8 {
        let kb = rng.gen_range(64u64..2048);
        let reduces = rng.gen_range(1u32..6);
        let placement =
            if rng.gen_bool(0.5) { Placement::CrossDomain } else { Placement::SingleDomain };
        let seed = rng.gen_range(0u64..1000);
        let cluster = ClusterSpec::builder().hosts(2).vms(5).placement(placement).build();
        let rep = run_terasort(cluster, kb * 1024, reduces, RootSeed(seed));
        assert!(rep.valid, "unsorted or lossy output for {kb} KB / {reduces} reduces");
        assert!(rep.records > 0);
    }
}

/// Wordcount conserves words: total counted occurrences are identical
/// whatever the reduce count, combiner setting, or placement.
#[test]
fn wordcount_conserves_counts() {
    // The canonical run (1 reduce, combiner on) on the same corpus.
    let base_cluster = ClusterSpec::builder().hosts(2).vms(6).build();
    let base = run_wordcount(base_cluster, 2 << 20, JobConfig::default(), RootSeed(13));
    let base_total: i64 = base.result.outputs.iter().map(|(_, v)| v.as_int()).sum();

    let mut rng = StdRng::seed_from_u64(0x33CC);
    for _case in 0..8 {
        let reduces = rng.gen_range(1u32..5);
        let combiner = rng.gen_bool(0.5);
        let placement =
            if rng.gen_bool(0.5) { Placement::CrossDomain } else { Placement::SingleDomain };
        let cluster = ClusterSpec::builder().hosts(2).vms(6).placement(placement).build();
        let cfg = JobConfig::default().with_reduces(reduces).with_combiner(combiner);
        let rep = run_wordcount(cluster, 2 << 20, cfg, RootSeed(13));
        let total: i64 = rep.result.outputs.iter().map(|(_, v)| v.as_int()).sum();
        assert_eq!(total, base_total, "word occurrences must be conserved");
    }
}

/// The simulated clock only moves forward and jobs always terminate.
#[test]
fn jobs_always_terminate() {
    let mut rng = StdRng::seed_from_u64(0x7E51);
    for _case in 0..6 {
        let vms = rng.gen_range(3u32..10);
        let mb = rng.gen_range(1u64..6);
        let cluster =
            ClusterSpec::builder().hosts(2).vms(vms).placement(Placement::CrossDomain).build();
        let rep = run_wordcount(cluster, mb << 20, JobConfig::default(), RootSeed(17));
        assert!(rep.elapsed_s.is_finite() && rep.elapsed_s > 0.0);
    }
}
