//! Reduced-scale shape assertions for the paper's static-performance
//! figures (Figs. 2–4): the same qualitative claims the bench binaries
//! verify at full scale, small enough for the test suite.

use mapreduce::config::JobConfig;
use simcore::rng::RootSeed;
use vcluster::spec::{ClusterSpec, Placement};
use workloads::prelude::*;

const MB: u64 = 1 << 20;

fn cluster(placement: Placement) -> ClusterSpec {
    ClusterSpec::builder().hosts(2).vms(8).placement(placement).build()
}

#[test]
fn fig2_wordcount_grows_with_size_and_cross_domain_is_no_faster() {
    let mut last_normal = 0.0;
    for mb in [2u64, 4, 8] {
        let normal = run_wordcount(
            cluster(Placement::SingleDomain),
            mb * MB,
            JobConfig::default(),
            RootSeed(1),
        );
        assert!(
            normal.elapsed_s >= last_normal,
            "runtime grows with input: {mb} MB took {:.2}s after {last_normal:.2}s",
            normal.elapsed_s
        );
        last_normal = normal.elapsed_s;
    }
    let normal =
        run_wordcount(cluster(Placement::SingleDomain), 8 * MB, JobConfig::default(), RootSeed(1));
    let cross =
        run_wordcount(cluster(Placement::CrossDomain), 8 * MB, JobConfig::default(), RootSeed(1));
    assert!(
        cross.elapsed_s >= normal.elapsed_s * 0.9,
        "cross-domain ({:.2}s) must not meaningfully beat normal ({:.2}s)",
        cross.elapsed_s,
        normal.elapsed_s
    );
}

#[test]
fn fig3a_mrbench_grows_with_maps() {
    let t1 = run_mrbench(cluster(Placement::CrossDomain), 1, 1, RootSeed(2)).elapsed_s;
    let t6 = run_mrbench(cluster(Placement::CrossDomain), 6, 1, RootSeed(2)).elapsed_s;
    assert!(t6 > t1, "6 maps ({t6:.2}s) slower than 1 map ({t1:.2}s)");
}

#[test]
fn fig3b_mrbench_grows_with_reduces() {
    let t1 = run_mrbench(cluster(Placement::CrossDomain), 7, 1, RootSeed(2)).elapsed_s;
    let t6 = run_mrbench(cluster(Placement::CrossDomain), 7, 6, RootSeed(2)).elapsed_s;
    assert!(t6 > t1, "6 reduces ({t6:.2}s) slower than 1 reduce ({t1:.2}s)");
}

#[test]
fn fig4a_terasort_grows_and_validates() {
    let small = run_terasort(cluster(Placement::SingleDomain), MB, 2, RootSeed(3));
    let large = run_terasort(cluster(Placement::SingleDomain), 4 * MB, 2, RootSeed(3));
    assert!(small.valid && large.valid, "TeraValidate passes");
    assert!(large.sort_time_s > small.sort_time_s, "sort time grows with data");
    assert!(large.gen_time_s > 0.0 && large.sort_time_s > large.gen_time_s);
}

#[test]
fn fig4b_dfsio_read_beats_write_everywhere() {
    for placement in [Placement::SingleDomain, Placement::CrossDomain] {
        let rep = run_dfsio(cluster(placement.clone()), 3, 16 * MB, RootSeed(4));
        assert!(
            rep.read_mb_s > rep.write_mb_s,
            "{placement:?}: read {:.1} MB/s > write {:.1} MB/s",
            rep.read_mb_s,
            rep.write_mb_s
        );
    }
}

#[test]
fn fig4b_cross_domain_write_degrades() {
    let normal = run_dfsio(cluster(Placement::SingleDomain), 4, 16 * MB, RootSeed(4));
    let cross = run_dfsio(cluster(Placement::CrossDomain), 4, 16 * MB, RootSeed(4));
    assert!(
        cross.write_mb_s <= normal.write_mb_s * 1.05,
        "cross write {:.1} vs normal {:.1} MB/s",
        cross.write_mb_s,
        normal.write_mb_s
    );
}
