//! Regression suite for tracker death racing an in-flight speculative
//! copy (the double-scheduling audit of the recovery/speculation pair).
//!
//! Audit conclusion encoded here: when a tracker dies while a map has a
//! live speculative twin, `fail_tracker`/`lose_tracker` conservatively
//! invalidate BOTH attempts under a fresh epoch — the surviving twin's
//! completion event is orphaned and swallowed by the epoch check, its
//! slot is released, and the task re-runs once. Wasteful by design, never
//! a double-schedule: output is counted exactly once and no slot leaks.

mod common;

use mapreduce::prelude::*;
use vhadoop::prelude::*;

/// CPU-heavy identity job: 8 maps of 40 records, ~2 s per healthy map, so
/// a throttled VM lags far past the 1.5× speculation threshold.
#[derive(Debug)]
struct HeavyApp;

impl MapReduceApp for HeavyApp {
    fn name(&self) -> &str {
        "heavy"
    }
    fn map(&self, k: &K, v: &V, out: &mut dyn FnMut(K, V)) {
        out(k.clone(), v.clone());
    }
    fn reduce(&self, k: &K, vs: &[V], out: &mut dyn FnMut(K, V)) {
        out(k.clone(), V::Int(vs.len() as i64));
    }
    fn cost(&self) -> CostProfile {
        CostProfile { map_cpu_per_record: 1.2e8, ..Default::default() }
    }
}

const INPUT: u64 = (8 << 20) - 1;

fn launch(plan: FaultPlan) -> VHadoop {
    VHadoop::launch(
        PlatformConfig::builder()
            .cluster(
                ClusterSpec::builder().hosts(2).vms(9).placement(Placement::SingleDomain).build(),
            )
            .hdfs(HdfsConfig { block_size: 1 << 20, replication: 2 })
            .no_monitor()
            .seed(77)
            .faults(plan)
            .build(),
    )
}

fn submit_heavy(p: &mut VHadoop) -> JobId {
    p.register_input("/in", INPUT, VmId(1));
    let input = GeneratorInput::new(8, 1 << 20, |idx| {
        (0..40).map(|i| (K::Int((idx * 100 + i) as i64), V::Float(i as f64))).collect()
    });
    let config = JobConfig {
        speculative: true,
        locality_aware: false,
        use_combiner: false,
        ..Default::default()
    };
    let spec = JobSpec::new("heavy", "/in", "/out").with_config(config);
    p.rt.submit(spec, Box::new(HeavyApp), Box::new(input))
}

/// A plan making VM 2 a deep straggler for the whole job.
fn straggler_plan() -> FaultPlan {
    FaultPlan::new().at(
        SimTime::from_nanos(200_000_000),
        FaultKind::StragglerVm { vm: 2, factor: 0.05, duration: SimDuration::from_secs(120) },
    )
}

/// Sorted `(key, count)` outputs of the heavy job.
fn sorted(res: &JobResult) -> Vec<(i64, i64)> {
    let mut v: Vec<(i64, i64)> =
        res.outputs.iter().map(|(k, val)| (k.as_int(), val.as_int())).collect();
    v.sort_unstable();
    v
}

/// Drives the job; the first time a speculative pair is observed,
/// `intervene(primary, backup)` picks a VM to kill and `kill` is applied.
fn run_with_intervention(
    p: &mut VHadoop,
    id: JobId,
    mut intervene: impl FnMut(&mut VHadoop, VmId, VmId) -> bool,
) -> (JobResult, bool) {
    let mut intervened = false;
    loop {
        if !intervened {
            if let Some(&(_m, primary, backup)) = p.rt.mr.speculating(id).first() {
                intervened = intervene(p, primary, backup);
            }
        }
        let (_, events) = p.step().expect("job must finish before the simulation drains");
        for ev in events {
            if let PlatformEvent::Job(JobEvent::JobDone(res)) = ev {
                if res.id == id {
                    return (*res, intervened);
                }
            }
        }
    }
}

/// Baseline payload: the same job, no faults, no failures.
fn clean_outputs() -> Vec<(i64, i64)> {
    let mut p = launch(FaultPlan::new());
    let id = submit_heavy(&mut p);
    let (res, _) = run_with_intervention(&mut p, id, |_, _, _| true);
    sorted(&res)
}

#[test]
fn tracker_death_of_primary_during_speculation_is_not_double_scheduled() {
    let clean = clean_outputs();

    let mut p = launch(straggler_plan());
    let id = submit_heavy(&mut p);
    let (res, intervened) = run_with_intervention(&mut p, id, |p, primary, _backup| {
        // Kill the straggling primary while its backup copy is in flight.
        p.fail_node(primary);
        true
    });
    assert!(intervened, "speculation never started — straggler not detected");
    assert_eq!(sorted(&res), clean, "output must be counted exactly once");
    assert!(res.counters.relaunched_tasks >= 1, "both attempts must be invalidated");
    assert!(p.rt.mr.busy_trackers().is_empty(), "a slot leaked after recovery");
}

#[test]
fn tracker_death_of_backup_during_speculation_is_not_double_scheduled() {
    let clean = clean_outputs();

    let mut p = launch(straggler_plan());
    let id = submit_heavy(&mut p);
    let (res, intervened) = run_with_intervention(&mut p, id, |p, _primary, backup| {
        // Kill the healthy backup: the conservative path also re-queues
        // the (still running) primary under a fresh epoch.
        p.fail_node(backup);
        true
    });
    assert!(intervened, "speculation never started — straggler not detected");
    assert_eq!(sorted(&res), clean, "output must be counted exactly once");
    assert!(res.counters.relaunched_tasks >= 1);
    assert!(p.rt.mr.busy_trackers().is_empty(), "a slot leaked after recovery");
}

#[test]
fn deferred_tracker_timeout_during_speculation_recovers_once() {
    let clean = clean_outputs();

    let mut p = launch(straggler_plan());
    let id = submit_heavy(&mut p);
    let (res, intervened) = run_with_intervention(&mut p, id, |p, primary, _backup| {
        // The detection-latency path: attempts die now, the re-queue
        // arrives 500 ms later as a PH_REQUEUE_* timer.
        let rt = &mut p.rt;
        rt.mr.lose_tracker(&mut rt.engine, &rt.cluster, primary, SimDuration::from_millis(500));
        true
    });
    assert!(intervened, "speculation never started — straggler not detected");
    assert_eq!(sorted(&res), clean, "output must be counted exactly once");
    assert!(res.counters.relaunched_tasks >= 1);
    assert!(p.rt.mr.busy_trackers().is_empty(), "a slot leaked after recovery");
}
