//! Reduced-scale shape assertions for the dynamic-performance experiment
//! (Fig. 5 / Table II): memory scaling, busy-vs-idle ratios, per-VM
//! downtime spread.

use vcluster::cluster::HostId;
use vcluster::migration::ClusterMigrationReport;
use vcluster::spec::{ClusterSpec, Placement};
use vhadoop::platform::{PlatformConfig, VHadoop};
use vhdfs::hdfs::HdfsConfig;
use workloads::loadgen::submit_load_job;

fn migrate(vms: u32, mem_mib: u64, busy: bool) -> ClusterMigrationReport {
    let cluster = ClusterSpec::builder()
        .hosts(2)
        .vms(vms)
        .vm_mem_mib(mem_mib)
        .placement(Placement::SingleDomain)
        .build();
    let mut platform = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(cluster)
            // Small blocks -> enough concurrent map tasks to keep slots busy.
            .hdfs(HdfsConfig { block_size: 4 << 20, replication: 2 })
            .build(),
    );
    if busy {
        let mut run = 0u32;
        platform
            .migration(HostId(1))
            .under_load(|rt| {
                // Synthetic busy load: every tracker gets CPU + I/O work.
                submit_load_job(rt, run, 2 * (vms - 1), 2.0, 24 << 20);
                run += 1;
                true
            })
            .0
    } else {
        platform.migration(HostId(1)).idle()
    }
}

#[test]
fn migration_time_scales_with_memory_downtime_does_not() {
    let m512 = migrate(4, 512, false);
    let m1024 = migrate(4, 1024, false);
    assert!(
        m1024.total_time_s() > 1.6 * m512.total_time_s(),
        "1024 MB ({:.1}s) ≈ 2× 512 MB ({:.1}s)",
        m1024.total_time_s(),
        m512.total_time_s()
    );
    let d512 = m512.total_downtime.as_millis_f64();
    let d1024 = m1024.total_downtime.as_millis_f64();
    assert!(
        (d1024 - d512).abs() < 0.5 * d512.max(100.0),
        "idle downtime uncorrelated with memory: {d512:.0} vs {d1024:.0} ms"
    );
}

trait TotalTime {
    fn total_time_s(&self) -> f64;
}
impl TotalTime for ClusterMigrationReport {
    fn total_time_s(&self) -> f64 {
        self.total_time.as_secs_f64()
    }
}

#[test]
fn busy_cluster_migrates_slower_with_much_worse_downtime() {
    let idle = migrate(4, 512, false);
    let busy = migrate(4, 512, true);
    let t_ratio = busy.total_time_s() / idle.total_time_s();
    let d_ratio =
        busy.total_downtime.as_millis_f64() / idle.total_downtime.as_millis_f64().max(1.0);
    println!("time ratio {t_ratio:.2}, downtime ratio {d_ratio:.2}");
    assert!(t_ratio > 1.2, "busy migration slower, got {t_ratio:.2}x");
    assert!(d_ratio > 3.0, "busy downtime much worse, got {d_ratio:.2}x");
}

#[test]
fn busy_downtime_varies_across_vms() {
    let busy = migrate(4, 512, true);
    let downs: Vec<f64> = busy.per_vm.iter().map(|r| r.downtime.as_millis_f64()).collect();
    let min = downs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = downs.iter().cloned().fold(0.0f64, f64::max);
    assert!(max > 1.5 * min.max(1.0), "per-VM downtime spread under load: {min:.0}..{max:.0} ms");
}

#[test]
fn every_vm_lands_on_destination() {
    let rep = migrate(5, 512, false);
    assert_eq!(rep.per_vm.len(), 5);
    assert!(rep.per_vm.iter().all(|r| r.dst == 1));
    assert!(rep.per_vm.iter().all(|r| r.transferred >= r.mem as f64));
}
