//! Integration-test crate for the vHadoop workspace.
//!
//! The actual tests live in `tests/tests/*.rs`; this library target exists
//! only so Cargo accepts the package.
