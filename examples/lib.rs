//! Example-binaries crate for the vHadoop workspace.
//!
//! The runnable examples are the `[[bin]]` targets declared in
//! `Cargo.toml`: `quickstart`, `ml_pipeline`, `datacenter_migration`,
//! `tuning_session`, `job_stream`, and `characterize`.
