//! Job stream: drive a seeded open-loop stream of MapReduce jobs through
//! the `vsched` control plane — admission queue, adaptive VM placement,
//! and the migration-driven rebalancer — then read the SLO report and the
//! consolidation-energy verdict.
//!
//! ```sh
//! cargo run -p vhadoop-examples --bin job_stream
//! ```

use vhadoop::prelude::*;
use workloads::loadgen::{ArrivalProcess, JobMix};

fn main() {
    // 1. Control-plane configuration: adaptive placement picks pack vs
    // spread from the workload hint; the rebalancer samples host load
    // every second and plans bounded live-migration sessions off hot
    // hosts (two hot windows in a row, at most 2 VMs per session).
    let (maps, cpu_secs, io_bytes) = JobMix::Wordcount.base();
    let mut ctrl = ControllerConfig::enabled_with(PlacementKind::Adaptive(WorkloadHint {
        tasks: maps,
        cpu_secs_per_task: cpu_secs,
        shuffle_bytes_per_task: io_bytes,
    }));
    ctrl.rebalance = Some(RebalanceConfig {
        interval: SimDuration::from_secs(1),
        hot_cpu: 0.75,
        hysteresis_ticks: 2,
        ..RebalanceConfig::default()
    });

    // 2. Launch the paper's 2×16 cluster under that controller. Small
    // HDFS blocks keep the synthetic inputs cheap.
    let mut platform = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(
                ClusterSpec::builder().hosts(2).vms(16).placement(Placement::SingleDomain).build(),
            )
            .hdfs(HdfsConfig { block_size: 1 << 20, replication: 2 })
            .no_monitor()
            .tracing(true)
            .seed(4242)
            .controller(ctrl)
            .build(),
    );
    println!("control plane up: adaptive placement, rebalancer armed");

    // 3. A seeded open-loop arrival process: 6 wordcount-like jobs from 2
    // tenants, exponential interarrival gaps, ±20 % size jitter.
    let arrivals =
        ArrivalProcess::new(JobMix::Wordcount, 6, SimDuration::from_secs(4), 2, RootSeed(4242))
            .schedule();
    for (i, a) in arrivals.iter().enumerate() {
        let run = i as u32;
        platform.schedule_job(a.at, a.tenant, a.expected_s, a.job(run));
        println!(
            "  t={:>5.1}s tenant {} submits load-{run} ({} maps, {:.1}s cpu, {} MB shuffle)",
            a.at.as_secs_f64(),
            a.tenant,
            a.maps,
            a.cpu_secs,
            a.io_bytes >> 20
        );
    }

    // 4. Closed loop: arrivals -> admission queue -> JobTracker -> SLO
    // tracker, with rebalance ticks interleaved. Runs to quiescence.
    let done = platform.drive_until_idle();
    println!(
        "\nstream drained at t={:.1}s: {} jobs finished",
        platform.now().as_secs_f64(),
        done.len()
    );

    // 5. The controller's verdict.
    let ctrl = platform.controller().expect("controller enabled");
    let report = ctrl.slo_report();
    println!("slo: {}", report.to_line());
    let c = ctrl.counters();
    println!(
        "ctrl: {} ticks, {} migrations planned / {} completed / {} aborted, queue hwm {}",
        c.rebalance_ticks,
        c.migrations_planned,
        c.migrations_completed,
        c.migrations_aborted,
        c.queue_depth_hwm
    );
    if let Some(energy) = ctrl.energy_report(&platform.rt.engine, &platform.rt.cluster) {
        println!(
            "energy: {:.0} J over {:.1}s ({:.0} J reclaimable by consolidating near-idle hosts)",
            energy.total_j(),
            energy.span_s,
            energy.consolidation_savings_j(1.0).max(0.0)
        );
    }

    // 6. Persist the SLO report for CI (and the curious).
    let json = ctrl.slo_report_json();
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/job_stream.slo.json", &json))
    {
        eprintln!("could not write SLO report: {e}");
    } else {
        println!("wrote results/job_stream.slo.json ({} bytes)", json.len());
    }
}
