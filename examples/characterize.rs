//! Characterize: run an ALOJA-style configuration sweep, fit the CART
//! cost model on the resulting dataset, evaluate it against the
//! hand-priced estimator on held-out rows, and leave everything under
//! `results/`:
//!
//! * `results/characterization.{csv,json}` — the versioned sweep dataset
//!   (configuration axes, decision-time features, observed counters,
//!   measured makespan + SLO labels);
//! * `results/costmodel.csv`  — per-held-out-row hand vs. learned
//!   estimates and absolute errors;
//! * `results/costmodel.json` — the evaluation summary (split sizes,
//!   tree shape, MAE and p90 error for both models).
//!
//! ```sh
//! cargo run --release -p vhadoop-examples --bin characterize -- \
//!     [--tiny|--quick|--full] [--threads N]
//! ```
//!
//! The dataset is byte-identical for every `--threads` value — runs are
//! seeded per configuration and results are assembled in configuration
//! order, never in completion order.

use std::path::Path;

use vchar::prelude::*;
use vsched::model::TreeConfig;

fn main() {
    // 1. CLI: grid preset and worker count.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec = SweepSpec::quick();
    let mut preset = "quick";
    let mut threads: usize = 4;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => (spec, preset) = (SweepSpec::tiny(), "tiny"),
            "--quick" => (spec, preset) = (SweepSpec::quick(), "quick"),
            "--full" => (spec, preset) = (SweepSpec::full(), "full"),
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a positive integer");
            }
            other => {
                panic!("unknown argument {other:?}; use [--tiny|--quick|--full] [--threads N]")
            }
        }
    }

    // 2. Sweep: hundreds of deterministic simulations over the
    // (mix × placement × scheduler × shape × fault) grid. Fault variants
    // of one configuration share a snapshot-forked warm-up prefix.
    println!(
        "sweep[{preset}]: {} groups x {} fault variants = {} runs on {threads} thread(s)",
        spec.groups().len(),
        spec.faults.len(),
        spec.runs()
    );
    let dataset = run_sweep(&spec, threads);
    let (csv, json) = dataset.write(Path::new("results")).expect("write dataset");
    println!(
        "dataset v{DATASET_VERSION}: {} rows -> {}, {}",
        dataset.rows.len(),
        csv.display(),
        json.display()
    );

    // 3. Fit the regression tree and score it against the hand-priced
    // estimator (feature 0 of every row) on the held-out quarter.
    let (tree, eval) = fit_cost_model(&dataset, &TreeConfig::default());
    println!(
        "tree: {} nodes, depth {}, trained on {} rows, {} held out",
        eval.tree_nodes, eval.tree_depth, eval.rows_train, eval.rows_heldout
    );
    println!(
        "held-out error: learned MAE {:.2}s (p90 {:.2}s) vs hand-priced MAE {:.2}s (p90 {:.2}s)",
        eval.learned_mae_s, eval.learned_p90_s, eval.hand_mae_s, eval.hand_p90_s
    );

    // 4. Emit the comparison artifacts.
    std::fs::write("results/costmodel.csv", heldout_csv(&dataset, &tree))
        .expect("write costmodel.csv");
    std::fs::write("results/costmodel.json", eval.to_json()).expect("write costmodel.json");
    println!("wrote results/costmodel.csv, results/costmodel.json");

    if eval.rows_heldout > 0 {
        assert!(
            eval.learned_mae_s <= eval.hand_mae_s,
            "the fitted tree should beat the hand-priced estimator it recalibrates \
             (learned {:.2}s vs hand {:.2}s)",
            eval.learned_mae_s,
            eval.hand_mae_s
        );
        println!(
            "the learned model cuts held-out MAE by {:.0}%",
            (1.0 - eval.learned_mae_s / eval.hand_mae_s) * 100.0
        );
    }
}
