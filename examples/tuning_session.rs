//! A MapReduce Tuner session: run a badly configured Wordcount, let the
//! tuner read the nmon data and the job counters, apply its advice, and
//! re-run — the paper's flow step 9 in action.
//!
//! ```sh
//! cargo run -p vhadoop-examples --bin tuning_session
//! ```

use vhadoop::prelude::*;
use workloads::textgen::TextCorpus;

fn run_once(config: JobConfig, label: &str) -> (JobResult, JobConfig, VHadoop) {
    let mut platform = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(
                ClusterSpec::builder().hosts(2).vms(8).placement(Placement::CrossDomain).build(),
            )
            .build(),
    );
    let input_bytes: u64 = 48 << 20;
    platform.register_input("/corpus", input_bytes, VmId(1));
    let blocks = platform.rt.hdfs.stat("/corpus").expect("registered").blocks.len();
    let block_size = platform.rt.hdfs.config().block_size;
    let corpus = TextCorpus::english_like(RootSeed(11));
    let last = blocks - 1;
    let input = GeneratorInput::new(blocks, block_size, move |idx| {
        let bytes = if idx == last { input_bytes - last as u64 * block_size } else { block_size };
        corpus.split_records(idx, bytes)
    });
    let spec = JobSpec::new("wordcount", "/corpus", "/out").with_config(config.clone());
    let result =
        platform.run_job(spec, Box::new(workloads::wordcount::WordCountApp), Box::new(input));
    println!(
        "{label}: {:.1}s elapsed, {:.1} MB shuffled, {:.0}% data-local maps",
        result.elapsed_secs(),
        result.counters.shuffle_bytes as f64 / 1e6,
        result.counters.data_locality() * 100.0
    );
    (result, config, platform)
}

fn main() {
    // Misconfigured: no combiner, no locality-aware scheduling.
    let bad = JobConfig::default().with_combiner(false).with_locality(false).with_reduces(4);
    let (result, mut config, platform) = run_once(bad, "untuned run ");

    let advice = platform.advise(&result, &config);
    println!("\nMapReduce Tuner says:\n{}", advice.to_text());

    let changes = tuner::apply_to_job_config(&advice, &mut config);
    if changes.is_empty() {
        println!("tuner had nothing to apply; done");
        return;
    }
    for c in &changes {
        println!("applied: {c}");
    }

    let (tuned, _, _) = run_once(config, "tuned run   ");
    let speedup = result.elapsed_secs() / tuned.elapsed_secs();
    println!("\nspeedup from tuning: {speedup:.2}x");
}
