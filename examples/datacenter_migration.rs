//! Live migration of a whole hadoop virtual cluster — the paper's dynamic
//! experiment (Fig. 5 / Table II) as an interactive scenario: migrate an
//! idle 16-VM cluster, then migrate it again while Wordcount is running,
//! and compare.
//!
//! ```sh
//! cargo run -p vhadoop-examples --bin datacenter_migration
//! ```

use vhadoop::prelude::*;

fn report(label: &str, rep: &ClusterMigrationReport) {
    println!(
        "{label}: total {:.1}s, downtime total {:.0}ms / max {:.0}ms",
        rep.total_time.as_secs_f64(),
        rep.total_downtime.as_millis_f64(),
        rep.max_downtime.as_millis_f64()
    );
    for vm in &rep.per_vm {
        println!(
            "  vm{:<3} {:>6.1}s migration, {:>7.1}ms downtime, {} rounds, {:?}",
            vm.vm,
            vm.migration_time.as_secs_f64(),
            vm.downtime.as_millis_f64(),
            vm.rounds,
            vm.stop_reason
        );
    }
}

fn main() {
    let cluster = ClusterSpec::builder()
        .hosts(2)
        .vms(8)
        .vm_mem_mib(512)
        .placement(Placement::SingleDomain)
        .build();

    // --- idle migration --------------------------------------------------
    let mut idle = VHadoop::launch(PlatformConfig::builder().cluster(cluster.clone()).build());
    let meter = EnergyMeter::start(&idle.rt.engine, &idle.rt.cluster, PowerModel::default());
    let idle_rep = idle.migration(HostId(1)).idle();
    report("idle cluster", &idle_rep);
    // The energy-saving argument: after consolidating onto host 1, host 0
    // draws only idle power and could be shut down.
    let energy = meter.report(&idle.rt.engine, &idle.rt.cluster);
    println!(
        "energy over the migration window: {:.1} kJ total; shutting idle hosts down would \
         recover {:.1} kJ",
        energy.total_j() / 1e3,
        energy.consolidation_savings_j(1.0) / 1e3
    );

    // --- migration under load ---------------------------------------------
    // Back-to-back wordcount-profile jobs keep every task slot busy for
    // the whole migration window, as in the paper's methodology (the
    // synthetic load carries wordcount's CPU/IO profile without the
    // wall-clock cost of tokenizing gigabytes of text).
    let mut busy = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(cluster)
            .hdfs(HdfsConfig { block_size: 4 << 20, replication: 3 })
            .build(),
    );
    let mut run = 0u32;
    let (busy_rep, jobs) = busy.migration(HostId(1)).under_load(|rt| {
        let maps = rt.cluster.vm_count() - 1;
        workloads::loadgen::submit_load_job(rt, run, maps, 2.0, 6 << 20);
        run += 1;
        true
    });
    println!();
    report("cluster under wordcount-profile load", &busy_rep);
    println!(
        "\n{} jobs survived the migration (first finished in {:.1}s)",
        jobs.len(),
        jobs.first().map_or(0.0, |j| j.elapsed_secs())
    );

    let t_ratio = busy_rep.total_time.as_secs_f64() / idle_rep.total_time.as_secs_f64();
    let d_ratio =
        busy_rep.total_downtime.as_millis_f64() / idle_rep.total_downtime.as_millis_f64().max(1.0);
    println!(
        "\nsummary: busy/idle migration time ratio {t_ratio:.1}x, downtime ratio {d_ratio:.1}x \
         (paper: ~3x and ~13x)"
    );
}
