//! Parallel machine learning on the virtual cluster: the paper's Section
//! IV workload. Clusters the Synthetic Control Chart set with all six
//! Mahout-style algorithms and visualizes the DisplayClustering samples.
//!
//! ```sh
//! cargo run -p vhadoop-examples --bin ml_pipeline
//! ```

use mlkit::prelude::*;
use simcore::prelude::RootSeed;

fn main() {
    let seed = RootSeed(2012);

    // --- Synthetic Control Chart: 600 series × 60 points, 6 classes ----
    let chart = control_chart_600(seed);
    println!(
        "control chart data set: {} series × {} points, {} classes",
        chart.len(),
        chart.dims(),
        chart.classes.len()
    );
    println!(
        "\n{:<14} {:>9} {:>7} {:>9} {:>8}",
        "algorithm", "time(s)", "iters", "clusters", "purity"
    );
    for alg in Algorithm::ALL {
        let run = run_algorithm(alg, DatasetKind::ControlChart, chart.points.clone(), 8, seed);
        let purity_s = run
            .model
            .as_ref()
            .map(|m| format!("{:.2}", purity(&chart.labels, &m.assignments)))
            .unwrap_or_else(|| "  - ".into());
        println!(
            "{:<14} {:>9.1} {:>7} {:>9} {:>8}",
            alg.name(),
            run.stats.elapsed_s,
            run.stats.iterations,
            run.clusters_found,
            purity_s
        );
    }

    // --- DisplayClustering: visualize k-means converging ----------------
    let samples = gaussian_mixture_1000(seed);
    let params = KMeansParams { k: 3, max_iters: 10, convergence: 0.01, ..Default::default() };
    let mut trail = IterationTrail::new();
    let mut centers = mlkit::kmeans::init_centers(&samples.points, params.k, seed);
    trail.push(centers.clone());
    for _ in 0..params.max_iters {
        let (next, moved) = mlkit::kmeans::lloyd_step(&samples.points, &centers, params.distance);
        centers = next;
        trail.push(centers.clone());
        if moved < params.convergence {
            break;
        }
    }
    let assignments = samples
        .points
        .iter()
        .map(|p| mlkit::vector::nearest(p, &centers, params.distance).0)
        .collect();
    let model = Clustering { centers, assignments };

    println!("\nk-means on 1000 Gaussian samples ({} iterations):", trail.iterations.len() - 1);
    println!("{}", render_ascii(&samples.points, &model, 72, 22));

    let svg = render_svg(
        "k-means on DisplayClustering samples",
        &samples.points,
        &model,
        &trail,
        640,
        480,
    );
    let path = "target/ml_pipeline_kmeans.svg";
    if std::fs::create_dir_all("target").and_then(|()| std::fs::write(path, &svg)).is_ok() {
        println!("iteration-trail SVG written to {path}");
    }

    // --- classification: Naive Bayes on the control charts --------------
    let train = mlkit::datasets::control_chart(seed.derive("train"), 80, 60);
    let test = mlkit::datasets::control_chart(seed.derive("test"), 20, 60);
    let mut ml = MlRuntime::new(scaled_cluster(8), train.points.clone(), seed);
    let (bayes, stats) = mlkit::bayes::train_mr(&mut ml, &train.labels);
    println!(
        "\nnaive bayes trained in {:.1}s of cluster time; held-out accuracy {:.0}% over {} classes",
        stats.elapsed_s,
        bayes.accuracy(&test.points, &test.labels) * 100.0,
        bayes.classes.len()
    );

    // --- recommendations: item-based collaborative filtering ------------
    let ratings = mlkit::recommend::synthetic_ratings(seed.derive("recsys"), 90, 3);
    let (similarity, rec_stats) =
        mlkit::recommend::cooccurrence_mr(scaled_cluster(8), &ratings, seed.derive("recsys"));
    let recs = similarity.recommend(&ratings, 0, 3);
    println!(
        "item co-occurrence computed in {:.1}s ({} item pairs); top picks for user 0: {:?}",
        rec_stats.elapsed_s,
        similarity.pairs.len(),
        recs.iter().map(|(i, _)| i).collect::<Vec<_>>()
    );
}
