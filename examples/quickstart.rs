//! Quickstart: boot a 16-node hadoop virtual cluster, upload text, run
//! Wordcount, and read the nmon monitor's verdict.
//!
//! ```sh
//! cargo run -p vhadoop-examples --bin quickstart
//! ```

use vhadoop::prelude::*;
use workloads::textgen::TextCorpus;

fn main() {
    // 1.–3. Launch the platform: 2 physical machines, 16 VMs (1 namenode +
    // 15 datanodes), Xen-style virtualization, images on NFS. Tracing on:
    // every task attempt, shuffle flow, and HDFS write leaves a span.
    let mut platform = VHadoop::launch(
        PlatformConfig::builder().cluster(ClusterSpec::paper_normal()).tracing(true).build(),
    );
    println!("platform up: {} VMs on {} hosts", 16, 2);

    // 4. Upload 32 MB of text to HDFS (simulated replication pipeline).
    let input_bytes: u64 = 32 << 20;
    let upload = platform.upload_input("/books", input_bytes, VmId(1));
    println!("uploaded {} MB in {upload} of simulated time", input_bytes >> 20);

    // 5.–8. Run Wordcount. The map/reduce code executes for real; elapsed
    // time comes from the contention model.
    let corpus = TextCorpus::english_like(RootSeed(7));
    let blocks = platform.rt.hdfs.stat("/books").expect("uploaded").blocks.len();
    let block_size = platform.rt.hdfs.config().block_size;
    let last = blocks - 1;
    let input = GeneratorInput::new(blocks, block_size, move |idx| {
        let bytes = if idx == last { input_bytes - last as u64 * block_size } else { block_size };
        corpus.split_records(idx, bytes)
    });
    let config = JobConfig::default().with_reduces(4);
    let spec = JobSpec::new("wordcount", "/books", "/counts").with_config(config);
    let result =
        platform.run_job(spec, Box::new(workloads::wordcount::WordCountApp), Box::new(input));

    println!(
        "wordcount finished in {:.1}s (map {:.1}s, reduce {:.1}s)",
        result.elapsed_secs(),
        result.map_phase.as_secs_f64(),
        result.reduce_phase.as_secs_f64()
    );
    println!(
        "  {} input records, {} distinct words, {:.0}% data-local maps",
        result.counters.map_input_records,
        result.counters.reduce_input_groups,
        result.counters.data_locality() * 100.0
    );

    // Top-5 words.
    let mut top: Vec<_> = result.outputs.iter().collect();
    top.sort_by_key(|(_, v)| std::cmp::Reverse(v.as_int()));
    println!("  top words:");
    for (k, v) in top.iter().take(5) {
        println!("    {:>8}  {}", v.as_int(), k.as_text());
    }

    // 9. What does the monitor say?
    if let Some(report) = platform.monitor_report() {
        println!("\nnmon monitor ({} samples):", report.samples);
        print!("{}", report.to_table());
        if let Some(b) = report.bottleneck() {
            println!("bottleneck: {} (mean {:.0}% utilized)", b.name, b.util.mean * 100.0);
        }
    }

    // 10. Distill the trace: per-category span statistics, then the raw
    // Chrome trace for chrome://tracing or https://ui.perfetto.dev.
    println!("\ntrace metrics:\n{}", platform.metrics().to_text());
    let trace = platform.rt.engine.tracer().to_chrome_json();
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/quickstart.trace.json", &trace))
    {
        eprintln!("could not write trace: {e}");
    } else {
        println!("wrote results/quickstart.trace.json ({} bytes)", trace.len());
    }
}
