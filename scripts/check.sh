#!/usr/bin/env bash
# Repo-wide checks: formatting, lints, tests, and a determinism lint.
# Run from anywhere: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> determinism lint"
# A run must be a pure function of config + seed: no wall clock and no OS
# entropy anywhere in the simulation crates.
if grep -rnE 'Instant::now|SystemTime::now|thread_rng' crates/*/src; then
    echo "determinism lint FAILED: wall clock or OS entropy in crates/" >&2
    exit 1
fi

echo "all checks passed"
