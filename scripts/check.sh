#!/usr/bin/env bash
# Repo-wide checks: formatting, lints, tests, and a determinism lint.
# Run from anywhere: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> examples build & run"
cargo build --release -p vhadoop-examples
for bin in quickstart datacenter_migration tuning_session ml_pipeline; do
    echo "--> $bin"
    cargo run --release -q -p vhadoop-examples --bin "$bin" > /dev/null
done

echo "==> exported trace validates"
trace=results/quickstart.trace.json
test -s "$trace" || { echo "missing or empty $trace" >&2; exit 1; }
if command -v python3 > /dev/null; then
    python3 - "$trace" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    t = json.load(f)
events = t["traceEvents"]
assert events, "trace has no events"
cats = {e["cat"] for e in events if e["ph"] == "X"}
missing = {"map", "shuffle", "reduce", "hdfs"} - cats
assert not missing, f"span categories missing from trace: {missing}"
print(f"    {len(events)} events, span categories: {sorted(cats)}")
PY
else
    # No python3: at least check the envelope and span coverage textually.
    grep -q '"traceEvents"' "$trace"
    for cat in map shuffle reduce hdfs; do
        grep -q "\"cat\":\"$cat\"" "$trace" || { echo "no $cat spans" >&2; exit 1; }
    done
fi

echo "==> faults: chaos & property suites"
# Snapshot the tree state first: fault/chaos tests must only ever write
# under results/.
before=$(git status --porcelain)
cargo test -q -p vhadoop-integration \
    --test chaos --test seed_sweep --test deprecated_shims \
    --test speculation_recovery --test cross_crate_props
cargo test -q -p proptest

echo "==> faults: ablation case & fault-annotated trace"
cargo run --release -q -p vhadoop-bench --bin ablations -- --case faults > /dev/null
ftrace=results/faults.trace.json
test -s "$ftrace" || { echo "missing or empty $ftrace" >&2; exit 1; }
if command -v python3 > /dev/null; then
    python3 - "$ftrace" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    t = json.load(f)
events = t["traceEvents"]
faults = [e for e in events if e.get("cat") == "fault"]
assert faults, "faulted trace has no fault spans"
names = {e["name"] for e in faults}
print(f"    {len(faults)} fault spans: {sorted(names)}")
PY
else
    grep -q '"traceEvents"' "$ftrace"
    grep -q '"cat":"fault"' "$ftrace" || { echo "no fault spans" >&2; exit 1; }
fi

# Fail if the fault stages dirtied anything outside results/.
after=$(git status --porcelain)
stray=$(comm -13 <(sort <<< "$before") <(sort <<< "$after") | grep -v ' results/' || true)
if [ -n "$stray" ]; then
    echo "fault stage wrote outside results/:" >&2
    echo "$stray" >&2
    exit 1
fi

echo "==> determinism lint"
# A run must be a pure function of config + seed: no wall clock and no OS
# entropy anywhere in the simulation crates.
if grep -rnE 'Instant::now|SystemTime::now|thread_rng' crates/*/src; then
    echo "determinism lint FAILED: wall clock or OS entropy in crates/" >&2
    exit 1
fi

echo "all checks passed"
