#!/usr/bin/env bash
# Repo-wide checks: formatting, lints, tests, and a determinism lint.
# Run from anywhere: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> examples build & run"
cargo build --release -p vhadoop-examples
for bin in quickstart datacenter_migration tuning_session ml_pipeline job_stream; do
    echo "--> $bin"
    cargo run --release -q -p vhadoop-examples --bin "$bin" > /dev/null
done

echo "==> exported trace validates"
trace=results/quickstart.trace.json
test -s "$trace" || { echo "missing or empty $trace" >&2; exit 1; }
if command -v python3 > /dev/null; then
    python3 - "$trace" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    t = json.load(f)
events = t["traceEvents"]
assert events, "trace has no events"
cats = {e["cat"] for e in events if e["ph"] == "X"}
missing = {"map", "shuffle", "reduce", "hdfs"} - cats
assert not missing, f"span categories missing from trace: {missing}"
print(f"    {len(events)} events, span categories: {sorted(cats)}")
PY
else
    # No python3: at least check the envelope and span coverage textually.
    grep -q '"traceEvents"' "$trace"
    for cat in map shuffle reduce hdfs; do
        grep -q "\"cat\":\"$cat\"" "$trace" || { echo "no $cat spans" >&2; exit 1; }
    done
fi

echo "==> faults: chaos & property suites"
# Snapshot the tree state first: fault/chaos tests must only ever write
# under results/.
before=$(git status --porcelain)
cargo test -q -p vhadoop-integration \
    --test chaos --test seed_sweep --test session_api \
    --test speculation_recovery --test cross_crate_props
cargo test -q -p proptest

echo "==> faults: ablation case & fault-annotated trace"
cargo run --release -q -p vhadoop-bench --bin ablations -- --case faults > /dev/null
ftrace=results/faults.trace.json
test -s "$ftrace" || { echo "missing or empty $ftrace" >&2; exit 1; }
if command -v python3 > /dev/null; then
    python3 - "$ftrace" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    t = json.load(f)
events = t["traceEvents"]
faults = [e for e in events if e.get("cat") == "fault"]
assert faults, "faulted trace has no fault spans"
names = {e["name"] for e in faults}
print(f"    {len(faults)} fault spans: {sorted(names)}")
PY
else
    grep -q '"traceEvents"' "$ftrace"
    grep -q '"cat":"fault"' "$ftrace" || { echo "no fault spans" >&2; exit 1; }
fi

# Fail if the fault stages dirtied anything outside results/.
after=$(git status --porcelain)
stray=$(comm -13 <(sort <<< "$before") <(sort <<< "$after") | grep -v ' results/' || true)
if [ -n "$stray" ]; then
    echo "fault stage wrote outside results/:" >&2
    echo "$stray" >&2
    exit 1
fi

echo "==> ctrl: placement ablation & SLO report"
# The placement ablation binary asserts the paper-shaped outcome itself
# (pack wins cpu-bound, spread wins shuffle-heavy, adaptive matches the
# winner); here we run it and then validate the job_stream example's SLO
# report — schema, zero starvation, and deterministic counter pins.
cargo run --release -q -p vhadoop-bench --bin ablations -- --case placement > /dev/null
slo=results/job_stream.slo.json
test -s "$slo" || { echo "missing or empty $slo" >&2; exit 1; }
if command -v python3 > /dev/null; then
    python3 - "$slo" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
assert d["report"] == "slo", "bad report schema"
for k in ("jobs", "admitted", "rejected", "started", "finished", "starved",
          "queue_wait_s", "makespan_s", "slowdown", "violations", "counters"):
    assert k in d, f"SLO report missing key {k}"
for k in ("p50", "p95", "max"):
    assert k in d["queue_wait_s"], f"queue_wait_s missing {k}"
c = d["counters"]
for k in ("queue_depth_hwm", "migrations_planned", "migrations_completed",
          "migrations_aborted", "rebalance_ticks", "consolidations"):
    assert k in c, f"counters missing key {k}"
# The run is deterministic: every admitted job starts and finishes, and
# the rebalancer's session really completes.
assert d["starved"] == 0, f"starved jobs: {d['starved']}"
assert d["jobs"] == d["admitted"] == d["finished"] == 6, "job accounting drifted"
assert d["rejected"] == 0
assert c["migrations_planned"] >= 1, "rebalancer never planned a move"
assert c["migrations_completed"] == c["migrations_planned"], "moves aborted"
assert c["queue_depth_hwm"] <= 8, f"queue ran away: {c['queue_depth_hwm']}"
print(f"    {d['jobs']} jobs, wait p95 {d['queue_wait_s']['p95']:.1f}s, "
      f"{c['migrations_completed']} migrations, 0 starved")
PY
else
    grep -q '"report": "slo"' "$slo"
    grep -q '"starved": 0' "$slo" || { echo "starved jobs in SLO report" >&2; exit 1; }
    grep -q '"queue_wait_s"' "$slo"
    grep -q '"counters"' "$slo"
fi

echo "==> topo: topology ablation, flat-spec identity & rack invariants"
# The topology ablation binary asserts the paper-shaped makespan ordering
# itself (in-rack < cross-rack < congested-core); the integration tests pin
# the degeneration contract (a single-rack TopologySpec traces byte-
# identical to the default flat spec) and the rack-spanning placement
# properties. The racked scalability sweep exercises the per-rack ToR
# accounting end to end.
cargo run --release -q -p vhadoop-bench --bin ablations -- --case topology > /dev/null
topo=results/topology.csv
test -s "$topo" || { echo "missing or empty $topo" >&2; exit 1; }
if command -v python3 > /dev/null; then
    python3 - "$topo" <<'PY'
import csv, sys
with open(sys.argv[1]) as f:
    rows = [r for r in csv.DictReader(f) if r["series"] == "topology"]
assert len(rows) == 3, f"expected 3 topology cases, got {len(rows)}"
secs = [float(r["seconds"]) for r in rows]
assert secs[0] < secs[1] < secs[2], f"topology ordering broken: {secs}"
print(f"    normal {secs[0]:.2f}s < cross-rack {secs[1]:.2f}s"
      f" < cross-core {secs[2]:.2f}s")
PY
else
    test "$(wc -l < "$topo")" -eq 4 || { echo "bad $topo" >&2; exit 1; }
fi
cargo test -q -p vhadoop-integration --test topology
cargo test -q -p vhadoop-integration --test cross_crate_props rack > /dev/null
cargo run --release -q -p vhadoop-bench --bin scalability -- \
    --scale 32 --racks 3 > /dev/null

echo "==> perf: simbench quick scenario (batched SoA kernel, 1024 VMs)"
# Runs the deterministic 1024-VM iterative-waves scenario through the
# frozen PR-4 kernel, the new kernel single-threaded, and the new kernel
# on an 8-thread scoped pool. The binary itself asserts the wakeup
# sequences are bit-identical across all three; here we additionally pin
# machine-independent counter ceilings so a regression in batching or the
# dirty-component closure (e.g. per-spawn re-solves sneaking back in)
# fails CI regardless of host speed. Current values: reallocations 3,
# flows_touched 3072, batch_applied 5120 (ceilings carry headroom except
# batch_applied, which is exact — the scenario's mutation count is pinned).
cargo run --release -q -p vhadoop-bench --bin simbench -- --quick --threads 8
perf=results/bench_simcore.json
test -s "$perf" || { echo "missing or empty $perf" >&2; exit 1; }
if command -v python3 > /dev/null; then
    python3 - "$perf" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
assert d["bench"] == "simcore" and d["cases"], "bad bench schema"
for s in d["cases"]:
    for k in ("scenario", "vms", "events", "legacy", "seq", "par",
              "touched_ratio_vs_legacy", "wall_speedup_vs_legacy",
              "identical_wakeups"):
        assert k in s, f"case missing key {k}"
    for side in ("legacy", "seq", "par"):
        for k in ("wall_s", "reallocations", "flows_touched",
                  "resources_touched", "flows_per_realloc"):
            assert k in s[side], f"{side} missing key {k}"
    assert s["identical_wakeups"] is True, "kernel output diverged"
quick = [s for s in d["cases"]
         if s["scenario"] == "iterative_waves" and s["vms"] == 1024]
assert quick, "quick case missing from results"
q = quick[0]
assert q["threads"] == 8, "quick case must exercise the 8-thread pool"
for side in ("seq", "par"):
    c = q[side]
    assert c["reallocations"] <= 6, \
        f"{side} reallocations regressed: {c['reallocations']} (batching broken?)"
    assert c["flows_touched"] <= 4608, \
        f"{side} flows_touched regressed: {c['flows_touched']}"
    assert c["batch_applied"] == 5120, \
        f"{side} batch_applied drifted: {c['batch_applied']}"
# threads=1 vs threads=8 must agree on every thread-independent counter,
# and the pool must actually have engaged under 8 threads.
for k in ("reallocations", "flows_touched", "resources_touched",
          "batch_applied", "comp_size_p99", "comp_size_max"):
    assert q["seq"][k] == q["par"][k], \
        f"counter {k} depends on thread count: {q['seq'][k]} vs {q['par'][k]}"
assert q["seq"]["components_solved_parallel"] == 0, "seq run used the pool"
assert q["par"]["components_solved_parallel"] > 0, "8-thread run never used the pool"
print(f"    iterative_waves@1024: {q['wall_speedup_vs_legacy']:.1f}x wall vs legacy, "
      f"{q['seq']['reallocations']} reallocations, "
      f"batch_applied {q['seq']['batch_applied']}, "
      f"pool solved {q['par']['components_solved_parallel']} components")
PY
else
    # No python3: textual envelope + the identity flag at least.
    grep -q '"bench": "simcore"' "$perf"
    grep -q '"identical_wakeups": true' "$perf" \
        || { echo "kernel output diverged" >&2; exit 1; }
    grep -q '"touched_ratio_vs_legacy"' "$perf"
fi

echo "==> snap: snapshot/restore/fork round-trips & what-if ablation"
# The round-trip suite pins byte-identical replay after a mid-run
# checkpoint (8 seeds x clean/faulted), fork divergence isolation, the
# canonical-encoding fixed point, and the golden format hash tied to
# SNAPSHOT_VERSION. Release profile: the suite replays ~50 full platform
# runs.
cargo test -q --release -p vhadoop-integration --test snapshot_roundtrip
cargo run --release -q -p vhadoop-bench --bin ablations -- --case whatif > /dev/null
wifcsv=results/whatif.csv
test -s "$wifcsv" || { echo "missing or empty $wifcsv" >&2; exit 1; }
if command -v python3 > /dev/null; then
    python3 - "$wifcsv" <<'PY'
import csv, sys
with open(sys.argv[1]) as f:
    rows = list(csv.DictReader(f))
by = lambda s: [r for r in rows if r["series"] == s]
est, meas, chosen = by("estimated_s"), by("measured_s"), by("chosen")
assert len(meas) >= 3, f"expected >= 3 what-if candidates, got {len(meas)}"
assert len(est) == len(meas) == len(chosen), "candidate series misaligned"
picked = [i for i, r in enumerate(chosen) if float(r["seconds"]) == 1.0]
assert len(picked) == 1, f"exactly one candidate must be committed: {picked}"
best = min(float(r["seconds"]) for r in meas)
assert float(meas[picked[0]]["seconds"]) == best, "committed candidate not best-measured"
mk = [float(r["seconds"]) for r in by("makespan")]
assert len(mk) == 2 and mk[1] <= mk[0] * 1.05, f"what-if worse than estimator: {mk}"
print(f"    {len(meas)} candidates, committed measured {best:.1f}s, "
      f"makespan est {mk[0]:.1f}s vs what-if {mk[1]:.1f}s")
PY
else
    grep -q "estimated_s" "$wifcsv"
    grep -q "measured_s" "$wifcsv" || { echo "bad $wifcsv" >&2; exit 1; }
fi

echo "==> hs: TPCx-HS conformance suite & benchmark sweep"
# The integration suite pins trace determinism across seeds, corruption
# and replica-loss diagnosis, the disaggregated-vs-colocated ordering,
# and the mid-HSSort snapshot round-trip; the quick sweep then runs all
# three cluster shapes at two scale factors and must validate cleanly
# with the figure of merit growing with SF in every configuration.
cargo test -q -p vhadoop-integration --test tpcxhs
cargo run --release -q -p vhadoop-bench --bin tpcxhs -- --quick > /dev/null
hs=BENCH_tpcxhs.json
test -s "$hs" || { echo "missing or empty $hs" >&2; exit 1; }
test -s results/tpcxhs.json || { echo "missing results/tpcxhs.json" >&2; exit 1; }
test -s results/tpcxhs.csv || { echo "missing results/tpcxhs.csv" >&2; exit 1; }
if command -v python3 > /dev/null; then
    python3 - "$hs" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
assert d["benchmark"] == "tpcxhs", "bad bench schema"
runs = d["runs"]
for r in runs:
    for k in ("config", "sf_bytes", "hsph", "total_s", "gen_s", "sort_s",
              "validate_s", "records", "validated"):
        assert k in r, f"run missing key {k}"
    assert r["validated"] is True, f"HSValidate failed on a clean run: {r}"
    assert r["records"] * 100 == r["sf_bytes"], f"record accounting drifted: {r}"
configs = sorted({r["config"] for r in runs})
assert configs == ["colocated", "disaggregated", "hetero"], configs
for c in configs:
    pts = sorted((r["sf_bytes"], r["hsph"]) for r in runs if r["config"] == c)
    assert len(pts) >= 2, f"{c}: expected a scale-factor sweep"
    foms = [y for _, y in pts]
    assert all(b >= a * 0.98 for a, b in zip(foms, foms[1:])), \
        f"{c}: HSph@SF must grow with the scale factor: {foms}"
print(f"    {len(runs)} runs over {len(configs)} shapes, all validated; "
      f"HSph@SF monotone per shape")
PY
else
    grep -q '"benchmark": "tpcxhs"' "$hs"
    if grep -q '"validated": false' "$hs"; then
        echo "HSValidate failed on a clean run" >&2; exit 1
    fi
    for c in colocated disaggregated hetero; do
        grep -q "\"config\": \"$c\"" "$hs" || { echo "missing shape $c" >&2; exit 1; }
    done
fi

echo "==> char: characterization sweep, dataset schema & learned cost model"
# The sweep's determinism contract: the dataset written by the quick grid
# must be byte-identical at 1 and 8 sweep threads. Then the fitted tree
# must beat the hand-priced estimator on held-out rows (the example
# asserts this itself; the schema check re-reads the artifacts), and the
# costmodel ablation must show the learned model cutting what-if
# estimator error on at least one cluster shape (asserted by the binary).
cargo test -q -p vhadoop-integration --test vchar
cargo run --release -q -p vhadoop-examples --bin characterize -- --quick --threads 1 > /dev/null
chrcsv=results/characterization.csv
chrjson=results/characterization.json
test -s "$chrcsv" || { echo "missing or empty $chrcsv" >&2; exit 1; }
cp "$chrcsv" results/.characterization.t1.csv
cp "$chrjson" results/.characterization.t1.json
cargo run --release -q -p vhadoop-examples --bin characterize -- --quick --threads 8 > /dev/null
cmp -s "$chrcsv" results/.characterization.t1.csv \
    || { echo "characterization.csv depends on the sweep thread count" >&2; exit 1; }
cmp -s "$chrjson" results/.characterization.t1.json \
    || { echo "characterization.json depends on the sweep thread count" >&2; exit 1; }
rm -f results/.characterization.t1.csv results/.characterization.t1.json
if command -v python3 > /dev/null; then
    python3 - "$chrcsv" "$chrjson" results/costmodel.json <<'PY'
import csv, json, sys
with open(sys.argv[1]) as f:
    rows = list(csv.DictReader(f))
assert len(rows) == 72, f"quick grid must yield 72 rows, got {len(rows)}"
cols = list(rows[0].keys())
for k in ("mix", "placement", "scheduler", "hosts", "vms", "racks", "fault",
          "seed", "feat_hand_estimate_s", "obs_wakeups", "obs_data_local_maps",
          "label_makespan_s", "label_slo_violations"):
    assert k in cols, f"dataset missing column {k}"
assert all(float(r["label_makespan_s"]) > 0 for r in rows), "zero makespan label"
with open(sys.argv[2]) as f:
    d = json.load(f)
assert d["dataset"] == "characterization" and d["version"] == 1, "bad envelope"
assert d["columns"] == cols, "JSON column dictionary diverged from the CSV"
assert len(d["rows"]) == len(rows), "JSON row count diverged from the CSV"
with open(sys.argv[3]) as f:
    ev = json.load(f)
assert ev["rows_heldout"] > 0, "no held-out rows"
assert ev["learned_mae_s"] <= ev["hand_mae_s"], \
    f"learned MAE {ev['learned_mae_s']} worse than hand {ev['hand_mae_s']}"
print(f"    72 rows x {len(cols)} columns, thread-invariant bytes; "
      f"held-out MAE learned {ev['learned_mae_s']:.2f}s vs hand {ev['hand_mae_s']:.2f}s")
PY
else
    head -1 "$chrcsv" | grep -q "feat_hand_estimate_s" || { echo "bad $chrcsv header" >&2; exit 1; }
    grep -q '"version": 1' "$chrjson" || { echo "bad $chrjson" >&2; exit 1; }
fi
cargo run --release -q -p vhadoop-bench --bin ablations -- --case costmodel > /dev/null
cmcsv=results/costmodel_ablation.csv
test -s "$cmcsv" || { echo "missing or empty $cmcsv" >&2; exit 1; }
grep -q "hand_err_mean" "$cmcsv" && grep -q "learned_err_mean" "$cmcsv" \
    || { echo "bad $cmcsv" >&2; exit 1; }

echo "==> determinism lint"
# A run must be a pure function of config + seed: no wall clock and no OS
# entropy anywhere in the simulation crates. The two offline bench
# harnesses (simbench, scalability) are the sanctioned exception: they
# measure host wall-clock *around* deterministic runs.
if grep -rnE 'Instant::now|SystemTime::now|thread_rng' crates/*/src \
    | grep -vE '^crates/bench/src/bin/(simbench|scalability)\.rs:[0-9]+:.*Instant'; then
    echo "determinism lint FAILED: wall clock or OS entropy in crates/" >&2
    exit 1
fi
# Threads are sanctioned in exactly three places: the scoped component-
# solve pool in simcore's fluid module (deterministic by construction —
# results are merged in canonical component order), the vchar sweep
# runner (workers own disjoint contiguous slot ranges and results are
# assembled in configuration order — the `char` stage above pins the
# byte-identity), and the bench binaries (which only pick a default
# --threads from host parallelism). Anywhere else, threading is a
# determinism hazard.
if grep -rnE 'std::thread|thread::(spawn|scope|Builder)' crates/*/src \
    | grep -vE '^crates/simcore/src/fluid\.rs:' \
    | grep -vE '^crates/vchar/src/sweep\.rs:' \
    | grep -vE '^crates/bench/src/bin/(simbench|scalability)\.rs:'; then
    echo "determinism lint FAILED: threading outside the sanctioned pool" >&2
    exit 1
fi

echo "all checks passed"
