//! Offline stand-in for `serde_derive`.
//!
//! The build container cannot reach crates.io, and nothing in this
//! workspace performs real serde serialization at runtime (result files
//! are written with a hand-rolled JSON/CSV writer in `vhadoop-bench`).
//! These derives therefore accept the usual syntax — including
//! `#[serde(...)]` helper attributes — and expand to nothing; the marker
//! traits in the sibling `serde` shim are blanket-implemented for all
//! types.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
