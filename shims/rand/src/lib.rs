//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this workspace ships
//! a minimal, API-compatible subset of `rand 0.8`: the `Rng` / `RngCore` /
//! `SeedableRng` traits, `rngs::StdRng`, `seq::SliceRandom`, and
//! `distributions::Standard` — everything the simulation actually calls.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, which is
//! deterministic, fast, and statistically solid for simulation use. It is
//! *not* the ChaCha12 generator real `rand` uses for `StdRng`, so absolute
//! random streams differ from upstream `rand` — irrelevant here, because
//! every golden value in this repo is derived from this generator.

#![warn(missing_docs)]

/// SplitMix64 step used for seeding (same constants as `simcore::rng`).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from a generator's raw bits (the
/// `Standard` distribution).
pub trait StandardSample {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from (`Range` / `RangeInclusive`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with uniform-range sampling support.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128;
                // Lemire-style widening multiply: deterministic, unbiased
                // enough for simulation purposes.
                let draw = (u128::from(rng.next_u64()).wrapping_mul(span)) >> 64;
                (lo as i128 + draw as i128) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()).wrapping_mul(span)) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty sample range");
                let u: f64 = f64::standard_sample(rng);
                (lo as f64 + u * (hi as f64 - lo as f64)) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                Self::sample_range(lo, hi, rng)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range_inclusive(lo, hi, rng)
    }
}

/// High-level draws, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform value of `T` over its whole domain ([0,1) for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }

    /// Draws one value of `distr`.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }

    /// Endless iterator of draws from `distr`.
    fn sample_iter<T, D: distributions::Distribution<T>>(
        self,
        distr: D,
    ) -> distributions::DistIter<D, Self, T>
    where
        Self: Sized,
    {
        distributions::DistIter { distr, rng: self, _marker: std::marker::PhantomData }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (not upstream
    /// rand's ChaCha12 — see the crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state — a resumable cursor into the
        /// stream. Pair with [`StdRng::from_state`] to checkpoint and
        /// restore a generator mid-stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact stream position captured by
        /// [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions (only `Standard` is provided).
pub mod distributions {
    use super::{RngCore, StandardSample};
    use std::marker::PhantomData;

    /// A way of drawing `T` values from a generator.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The full-domain uniform distribution ([0,1) for floats).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl<T: StandardSample> Distribution<T> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::standard_sample(rng)
        }
    }

    /// Endless draw iterator returned by [`super::Rng::sample_iter`].
    #[derive(Debug)]
    pub struct DistIter<D, R, T> {
        pub(crate) distr: D,
        pub(crate) rng: R,
        pub(crate) _marker: PhantomData<T>,
    }

    impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }
}

/// Sequence-related draws.
pub mod seq {
    use super::{RngCore, SampleUniform};

    /// Random element selection and shuffling on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(usize::sample_range(0, self.len(), rng))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, usize::sample_range_inclusive(0, i, rng));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8).map(|_| StdRng::seed_from_u64(7).gen()).collect();
        let b: Vec<u64> = (0..8).map(|_| StdRng::seed_from_u64(7).gen()).collect();
        assert_eq!(a, b);
        assert_ne!(StdRng::seed_from_u64(1).gen::<u64>(), StdRng::seed_from_u64(2).gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17);
            assert!((3..17).contains(&i));
            let j: i32 = rng.gen_range(1..=3);
            assert!((1..=3).contains(&j));
            let f = rng.gen_range(-2.5..4.0);
            assert!((-2.5..4.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn choose_and_shuffle_cover_the_slice() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs = [1, 2, 3, 4, 5];
        let mut seen = [false; 5];
        for _ in 0..200 {
            let &x = xs.choose(&mut rng).expect("non-empty");
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s), "all elements reachable");
        let mut ys = [1, 2, 3, 4, 5];
        ys.shuffle(&mut rng);
        let mut sorted = ys;
        sorted.sort_unstable();
        assert_eq!(sorted, xs);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
