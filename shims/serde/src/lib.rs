//! Offline stand-in for `serde`.
//!
//! The build container cannot reach crates.io. The workspace only ever
//! *derives* `Serialize`/`Deserialize` (no runtime serde serialization —
//! `vhadoop-bench` writes its JSON/CSV result files by hand), so this shim
//! keeps every `#[derive(Serialize, Deserialize)]` and
//! `use serde::{Serialize, Deserialize}` in the tree compiling without the
//! real crate: the traits are empty markers blanket-implemented for all
//! types, and the derives (re-exported from the `serde_derive` shim)
//! expand to nothing.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; implemented by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented by every type.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
