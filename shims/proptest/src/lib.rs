//! Offline stand-in for property-based testing.
//!
//! The build container has no access to crates.io, so this workspace ships
//! a tiny seeded-case runner under the familiar name. It is **not**
//! API-compatible with the real `proptest` crate and does **no input
//! shrinking**: each case draws inputs from a [`Gen`] seeded by a pure
//! function of the configured seed and the case index, the property runs
//! under `catch_unwind`, and on failure the runner prints the case index
//! and the exact per-case seed before resuming the panic — re-running with
//! `PROPTEST_CASE_SEED=<that seed> PROPTEST_CASES=1` replays the failing
//! inputs deterministically, which is the shrinking substitute.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Random-input source handed to each property case.
#[derive(Debug, Clone)]
pub struct Gen {
    rng: StdRng,
}

impl Gen {
    /// Generator seeded by a pure function of `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Gen { rng: StdRng::seed_from_u64(seed) }
    }

    /// Direct access to the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform `u64` in `[lo, hi]`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform `u32` in `[lo, hi]`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// Uniformly random element of `xs`.
    ///
    /// # Panics
    /// If `xs` is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose on empty slice");
        &xs[self.usize_in(0, xs.len() - 1)]
    }
}

/// How many cases to run and from which seed to derive them.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of cases (env override: `PROPTEST_CASES`).
    pub cases: u32,
    /// Base seed (env override: `PROPTEST_CASE_SEED`).
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 12, seed: 0x70726F70 }
    }
}

impl Config {
    /// `cases` cases from the default seed.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases, ..Config::default() }
    }

    fn resolved(self) -> Self {
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(self.cases);
        let seed = std::env::var("PROPTEST_CASE_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.seed);
        Config { cases, seed }
    }
}

/// SplitMix64-style mix deriving the per-case seed from base seed + index.
fn case_seed(base: u64, index: u32) -> u64 {
    let mut z = base ^ (u64::from(index).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `prop` for each configured case with a freshly seeded [`Gen`].
///
/// On a panicking case the runner prints `name`, the case index and the
/// per-case seed to stderr, then resumes the panic so the test fails with
/// the original message.
pub fn check(name: &str, cfg: Config, mut prop: impl FnMut(&mut Gen)) {
    // When PROPTEST_CASE_SEED is set it is the *exact* per-case seed of
    // case 0 (the replay path printed on failure); otherwise per-case
    // seeds are derived from the configured base seed.
    let exact = std::env::var("PROPTEST_CASE_SEED").is_ok();
    let cfg = cfg.resolved();
    for case in 0..cfg.cases {
        let seed = if exact && case == 0 { cfg.seed } else { case_seed(cfg.seed, case) };
        let mut g = Gen::from_seed(seed);
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| prop(&mut g))) {
            eprintln!(
                "proptest '{name}': case {case}/{} failed — replay with \
                 PROPTEST_CASE_SEED={seed} PROPTEST_CASES=1",
                cfg.cases
            );
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_per_seed() {
        let mut a = Vec::new();
        check("collect-a", Config { cases: 5, seed: 9 }, |g| a.push(g.u64_in(0, 1000)));
        let mut b = Vec::new();
        check("collect-b", Config { cases: 5, seed: 9 }, |g| b.push(g.u64_in(0, 1000)));
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let mut c = Vec::new();
        check("collect-c", Config { cases: 5, seed: 10 }, |g| c.push(g.u64_in(0, 1000)));
        assert_ne!(a, c);
    }

    #[test]
    fn draws_stay_in_bounds() {
        check("bounds", Config { cases: 50, seed: 1 }, |g| {
            let u = g.usize_in(3, 7);
            assert!((3..=7).contains(&u));
            let f = g.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let &x = g.choose(&[10, 20, 30]);
            assert!([10, 20, 30].contains(&x));
            let _ = g.bool(0.5);
        });
    }

    #[test]
    fn failing_case_resumes_panic() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            check("fails", Config { cases: 3, seed: 2 }, |_| panic!("boom"));
        }));
        assert!(caught.is_err());
    }
}
