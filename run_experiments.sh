#!/usr/bin/env bash
# Regenerates every table and figure of the paper. Results land in
# results/*.{json,csv} and logs in results/logs/.
set -uo pipefail
cd "$(dirname "$0")"
mkdir -p results/logs
BINS=(table1_benchmarks fig2_wordcount fig3_mrbench fig4_terasort fig4_dfsio \
      fig5_migration table2_migration fig6_control_chart fig7_display_clustering \
      scalability \
      fig8_screenshots ablations)
status=0
for b in "${BINS[@]}"; do
  echo "=== $b ==="
  if cargo run --release -q -p vhadoop-bench --bin "$b" -- "$@" 2>&1 | tee "results/logs/$b.log"; then
    echo "--- $b OK"
  else
    echo "--- $b FAILED"; status=1
  fi
done
exit $status
